"""CLI tests (`python -m repro`)."""

import pytest

from repro.cli import main

GOOD_MANUAL = """\
inputs a, b;

fn main() {
  atomic {
    let consistent(1) x = input(a);
    let consistent(1) y = input(b);
  }
  log(x, y);
}
"""

ANNOTATED = """\
inputs temp;

fn main() {
  let t = input(temp);
  Fresh(t);
  if t > 10 { alarm(); }
  log(t);
}
"""

HEAVY_REGION = """\
fn main() {
  atomic { work(999999); }
}
"""


@pytest.fixture()
def source_file(tmp_path):
    def write(text: str):
        path = tmp_path / "prog.ocl"
        path.write_text(text)
        return str(path)

    return write


class TestCompile:
    def test_compile_default_ocelot(self, source_file, capsys):
        assert main(["compile", source_file(ANNOTATED)]) == 0
        out = capsys.readouterr().out
        assert "checker     : PASS" in out
        assert "region " in out

    def test_compile_jit_reports_failures_but_exits_zero(
        self, source_file, capsys
    ):
        assert main(["compile", source_file(ANNOTATED), "--config", "jit"]) == 0
        out = capsys.readouterr().out
        assert "FAIL" in out

    def test_compile_ir_dump(self, source_file, capsys):
        main(["compile", source_file(ANNOTATED), "--ir"])
        out = capsys.readouterr().out
        assert "atomic_start" in out
        assert "annot fresh(t)" in out

    def test_compile_policies_dump(self, source_file, capsys):
        main(["compile", source_file(ANNOTATED), "--policies"])
        out = capsys.readouterr().out
        assert "policy fresh@" in out


class TestBuild:
    def test_build_defaults_to_summary(self, source_file, capsys):
        assert main(["build", source_file(ANNOTATED)]) == 0
        out = capsys.readouterr().out
        assert "config      : ocelot" in out
        assert "checker     : PASS" in out

    def test_build_accepts_benchmark_names(self, capsys):
        assert main(["build", "greenhouse", "--emit", "timings"]) == 0
        out = capsys.readouterr().out
        assert "infer-regions" in out
        assert "total" in out

    def test_build_emits_multiple_artifacts(self, source_file, capsys):
        code = main(
            ["build", source_file(ANNOTATED), "--emit", "ir,regions",
             "--emit", "diagnostics"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "== ir ==" in out
        assert "== regions ==" in out
        assert "== diagnostics ==" in out
        assert "atomic_start" in out

    def test_build_every_registered_artifact(self, source_file, capsys):
        from repro.core.passes import ARTIFACTS

        code = main(
            ["build", source_file(ANNOTATED), "--emit", ",".join(sorted(ARTIFACTS))]
        )
        assert code == 0
        out = capsys.readouterr().out
        for kind in ARTIFACTS:
            assert f"== {kind} ==" in out

    def test_build_unknown_artifact_reports_known(self, source_file):
        with pytest.raises(SystemExit) as excinfo:
            main(["build", source_file(ANNOTATED), "--emit", "bytecode"])
        assert "known:" in str(excinfo.value)

    def test_build_unknown_target_reports_benchmarks(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["build", "nonesuch.ocl"])
        assert "greenhouse" in str(excinfo.value)

    def test_unknown_config_lists_registered_names(self, source_file):
        with pytest.raises(SystemExit) as excinfo:
            main(["compile", source_file(ANNOTATED), "--config", "turbo"])
        message = str(excinfo.value)
        assert "unknown build configuration 'turbo'" in message
        assert "ocelot" in message and "jit" in message and "atomics" in message
        assert "\n" not in message  # one-line error

    def test_derived_config_via_cli(self, source_file, capsys):
        code = main(
            ["build", source_file(ANNOTATED), "--config", "ocelot-noguard"]
        )
        assert code == 0
        assert "config      : ocelot-noguard" in capsys.readouterr().out


class TestCheck:
    def test_good_manual_regions_pass(self, source_file, capsys):
        assert main(["check", source_file(GOOD_MANUAL)]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_uncovered_annotation_fails(self, source_file, capsys):
        assert main(["check", source_file(ANNOTATED)]) == 1
        assert "FAIL" in capsys.readouterr().out


class TestRun:
    def test_run_with_constant_bindings(self, source_file, capsys):
        code = main(
            ["run", source_file(ANNOTATED), "--set", "temp=42"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "alarm()" in out
        assert "log(42)" in out

    def test_run_with_stepping_signal(self, source_file, capsys):
        code = main(
            ["run", source_file(ANNOTATED), "--set", "temp=1,99:50"]
        )
        assert code == 0

    def test_run_defaults_unbound_channels_to_zero(self, source_file, capsys):
        assert main(["run", source_file(ANNOTATED)]) == 0
        out = capsys.readouterr().out
        assert "log(0)" in out

    def test_run_intermittent(self, source_file, capsys):
        code = main(
            [
                "run",
                source_file(ANNOTATED),
                "--set",
                "temp=42",
                "--intermittent",
                "--seed",
                "3",
            ]
        )
        assert code == 0

    def test_bad_set_spec(self, source_file):
        with pytest.raises(SystemExit):
            main(["run", source_file(ANNOTATED), "--set", "oops"])

    def test_non_integer_value_reports_clear_error(self, source_file):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", source_file(ANNOTATED), "--set", "temp=warm"])
        message = str(excinfo.value)
        assert "bad --set 'temp=warm'" in message
        assert "integer" in message

    def test_non_integer_step_level_reports_clear_error(self, source_file):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", source_file(ANNOTATED), "--set", "temp=1,hot:50"])
        message = str(excinfo.value)
        assert "bad --set 'temp=1,hot:50'" in message
        assert "comma-separated integers" in message

    def test_non_integer_dwell_reports_clear_error(self, source_file):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", source_file(ANNOTATED), "--set", "temp=1,2:fast"])
        message = str(excinfo.value)
        assert "bad --set 'temp=1,2:fast'" in message
        assert "dwell" in message


class TestFeasibility:
    def test_feasible_program(self, source_file, capsys):
        assert main(["feasibility", source_file(ANNOTATED)]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_infeasible_region(self, source_file, capsys):
        assert main(["feasibility", source_file(HEAVY_REGION)]) == 1
        out = capsys.readouterr().out
        assert "INFEASIBLE" in out


class TestCampaign:
    SPEC = {
        "name": "cli-smoke",
        "apps": ["cem"],
        "configs": ["ocelot", "jit"],
        "environments": [{"name": "default", "env_seed": 0}],
        "supplies": [{"name": "harvest", "kind": "harvest", "seed_offset": 23}],
        "seeds": [0],
        "budget_cycles": 30000,
    }

    @pytest.fixture()
    def spec_file(self, tmp_path):
        import json

        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(self.SPEC))
        return str(path)

    def test_campaign_writes_json_report(self, spec_file, tmp_path, capsys):
        import json

        out = tmp_path / "report.json"
        assert main(["campaign", spec_file, "--output", str(out)]) == 0
        report = json.loads(out.read_text())
        assert report["spec"]["name"] == "cli-smoke"
        assert len(report["jobs"]) == 2
        assert "Campaign 'cli-smoke'" in capsys.readouterr().out

    def test_campaign_defaults_to_stdout(self, spec_file, capsys):
        import json

        assert main(["campaign", spec_file]) == 0
        report = json.loads(capsys.readouterr().out)
        assert {job["config"] for job in report["jobs"]} == {"ocelot", "jit"}

    def test_bad_spec_reports_clear_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", str(path)])
        assert "bad campaign spec" in str(excinfo.value)


class TestFleet:
    SPEC = {
        "name": "cli-fleet",
        "fleet_seed": 3,
        "budget_cycles": 12000,
        "classes": [
            {
                "name": "tire",
                "app": "tire",
                "config": "ocelot",
                "count": 3,
                "harvest_jitter": 0.3,
            },
            {"name": "cem", "app": "cem", "config": "jit", "count": 2},
        ],
    }

    @pytest.fixture()
    def spec_file(self, tmp_path):
        import json

        path = tmp_path / "fleet.json"
        path.write_text(json.dumps(self.SPEC))
        return str(path)

    def test_fleet_writes_json_report(self, spec_file, tmp_path, capsys):
        import json

        out = tmp_path / "fleet-report.json"
        assert main(["fleet", spec_file, "--output", str(out)]) == 0
        report = json.loads(out.read_text())
        assert report["spec"]["name"] == "cli-fleet"
        assert report["devices"] == 5
        assert set(report["aggregate"]["classes"]) == {"tire", "cem"}
        assert "Fleet 'cli-fleet'" in capsys.readouterr().out

    def test_fleet_devices_rescales(self, spec_file, capsys):
        import json

        assert main(["fleet", spec_file, "--devices", "10"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["devices"] == 10

    def test_fleet_histograms_flag(self, spec_file, capsys):
        assert main(["fleet", spec_file, "--histograms"]) == 0
        err = capsys.readouterr().err
        assert "violation histograms" in err
        assert "duty-cycle distribution" in err

    def test_fleet_checkpoint_roundtrip(self, spec_file, tmp_path, capsys):
        import json

        ckpt = tmp_path / "ckpt.json"
        out1 = tmp_path / "one-shot.json"
        out2 = tmp_path / "resumed.json"
        assert main(["fleet", spec_file, "--output", str(out1)]) == 0
        assert main(
            [
                "fleet",
                spec_file,
                "--checkpoint",
                str(ckpt),
                "--checkpoint-every",
                "2",
                "--output",
                str(out2),
            ]
        ) == 0
        one = json.loads(out1.read_text())
        two = json.loads(out2.read_text())
        assert one["aggregate"] == two["aggregate"]
        # A second invocation resumes the finished checkpoint: all devices
        # already folded, nothing re-run, same aggregate.
        out3 = tmp_path / "rerun.json"
        assert main(
            ["fleet", spec_file, "--checkpoint", str(ckpt), "--output", str(out3)]
        ) == 0
        three = json.loads(out3.read_text())
        assert three["aggregate"] == one["aggregate"]
        assert three["resumed_devices"] == 5

    def test_bad_fleet_spec_reports_clear_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"classes": []}')
        with pytest.raises(SystemExit) as excinfo:
            main(["fleet", str(path)])
        assert "bad fleet spec" in str(excinfo.value)


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
