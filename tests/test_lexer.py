"""Lexer unit tests."""

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import TokenKind, tokenize


def kinds(source: str) -> list[str]:
    return [t.kind for t in tokenize(source)]


def texts(source: str) -> list[str]:
    return [t.text for t in tokenize(source)[:-1]]  # drop EOF


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == TokenKind.EOF

    def test_integer(self):
        tokens = tokenize("12345")
        assert tokens[0].kind == TokenKind.INT
        assert tokens[0].text == "12345"

    def test_identifier(self):
        tokens = tokenize("foo_bar9")
        assert tokens[0].kind == TokenKind.IDENT
        assert tokens[0].text == "foo_bar9"

    def test_keywords_are_not_identifiers(self):
        for word in ("fn", "let", "fresh", "consistent", "if", "else",
                     "repeat", "atomic", "return", "nonvolatile", "inputs",
                     "input", "skip", "true", "false"):
            token = tokenize(word)[0]
            assert token.kind == TokenKind.KEYWORD, word

    def test_capitalized_fresh_is_identifier(self):
        # Annotation markers are capitalized (Fresh/Consistent), which the
        # parser distinguishes from the binding keywords.
        token = tokenize("Fresh")[0]
        assert token.kind == TokenKind.IDENT

    def test_two_char_operators_max_munch(self):
        assert texts("== != <= >= && ||") == ["==", "!=", "<=", ">=", "&&", "||"]

    def test_adjacent_equals_tokenize_as_eq_then_assign(self):
        assert texts("===") == ["==", "="]

    def test_one_char_operators(self):
        # Spaced out so adjacent '!' '=' don't max-munch into '!='.
        assert texts("+ - * / % < > ! = &") == list("+-*/%<>!=&")

    def test_punctuation(self):
        assert texts("(){}[];,") == list("(){}[];,")


class TestTrivia:
    def test_comments_are_skipped(self):
        assert texts("a // comment here\n b") == ["a", "b"]

    def test_comment_at_eof_without_newline(self):
        assert texts("a // trailing") == ["a"]

    def test_whitespace_variants(self):
        assert texts("a\tb\r\nc  d") == ["a", "b", "c", "d"]


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("ab\n  cd")
        assert tokens[0].span.line == 1 and tokens[0].span.col == 1
        assert tokens[1].span.line == 2 and tokens[1].span.col == 3

    def test_span_covers_token_text(self):
        token = tokenize("hello")[0]
        assert token.span.end_col == token.span.col + len("hello")


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")

    def test_error_carries_position(self):
        with pytest.raises(LexError) as excinfo:
            tokenize("ab\n#")
        assert excinfo.value.span.line == 2


class TestTokenHelpers:
    def test_is_kw(self):
        token = tokenize("let")[0]
        assert token.is_kw("let")
        assert not token.is_kw("fn")

    def test_is_op_and_is_punct(self):
        op, punct = tokenize("+ ;")[:2]
        assert op.is_op("+")
        assert punct.is_punct(";")

    def test_str_smoke(self):
        assert "let" in str(tokenize("let")[0])
