"""Front-end robustness: arbitrary input must fail cleanly, never crash.

Any byte soup fed to the parser must either parse or raise a
:class:`~repro.lang.errors.LangError` subclass with a position -- no bare
``IndexError`` / ``RecursionError`` / ``AttributeError`` escapes.  Mutated
valid programs exercise the error paths near real syntax.
"""

import contextlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.errors import LangError
from repro.lang.parser import parse_program

from tests.strategies import program_sources


class TestArbitraryInput:
    @given(st.text(max_size=200))
    @settings(max_examples=150, deadline=None)
    def test_random_text_never_crashes(self, text):
        with contextlib.suppress(LangError):  # clean rejection is fine
            parse_program(text)

    @given(
        st.text(
            alphabet="fnletihs(){};=<>&|!+-*/%0123456789abct ,\n",
            max_size=120,
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_keyword_soup_never_crashes(self, text):
        with contextlib.suppress(LangError):
            parse_program(text)


class TestMutatedPrograms:
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_single_character_deletion(self, data):
        source = data.draw(program_sources())
        if len(source) < 2:
            return
        idx = data.draw(st.integers(0, len(source) - 1))
        mutated = source[:idx] + source[idx + 1 :]
        with contextlib.suppress(LangError):
            parse_program(mutated)

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_single_character_substitution(self, data):
        source = data.draw(program_sources())
        idx = data.draw(st.integers(0, len(source) - 1))
        junk = data.draw(st.sampled_from("{}();=,&|<>"))
        mutated = source[:idx] + junk + source[idx + 1 :]
        with contextlib.suppress(LangError):
            parse_program(mutated)

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_truncation(self, data):
        source = data.draw(program_sources())
        cut = data.draw(st.integers(0, len(source)))
        with contextlib.suppress(LangError):
            parse_program(source[:cut])


class TestErrorPositions:
    @pytest.mark.parametrize(
        "source,line",
        [
            ("fn main() {\n  let = 1;\n}", 2),
            ("fn main() {\n  skip;\n  if {\n}", 3),
            ("inputs a;\nfn main() { let x = input(); }", 2),
        ],
    )
    def test_errors_carry_line_numbers(self, source, line):
        with pytest.raises(LangError) as excinfo:
            parse_program(source)
        assert excinfo.value.span.line == line
