"""Detector plan and bit-vector tests (Section 7.3)."""

from repro.analysis.provenance import Chain
from repro.core.pipeline import compile_source
from repro.ir import instructions as ir
from repro.runtime.detector import BitVector, build_detector_plan


def plan_for(source: str, config: str = "jit"):
    compiled = compile_source(source, config)
    return compiled, build_detector_plan(compiled.policies)


class TestPlanConstruction:
    def test_fresh_policy_checks_at_uses(self):
        compiled, plan = plan_for(
            "inputs ch;\n"
            "fn main() { let x = input(ch); Fresh(x); if x > 5 { alarm(); } }"
        )
        fresh_checks = [
            c for checks in plan.checks.values() for c in checks
            if c.kind == "fresh"
        ]
        assert fresh_checks
        for check in fresh_checks:
            assert all(ch in plan.bit_chains for ch in check.required)

    def test_consistent_checks_ordered_by_member(self):
        compiled, plan = plan_for(
            "inputs a, b, c;\n"
            "fn main() { let consistent(1) x = input(a); "
            "let consistent(1) y = input(b); "
            "let consistent(1) z = input(c); log(x, y, z); }"
        )
        consistent = [
            c for checks in plan.checks.values() for c in checks
            if c.kind == "consistent"
        ]
        sizes = sorted(len(c.required) for c in consistent)
        # Second member requires 1 input, third requires 2.
        assert sizes == [1, 2]

    def test_first_member_input_has_no_check(self):
        compiled, plan = plan_for(
            "inputs a, b;\n"
            "fn main() { let consistent(1) x = input(a); "
            "let consistent(1) y = input(b); log(x, y); }"
        )
        inputs = sorted(
            i.uid for i in compiled.module.all_instrs()
            if isinstance(i, ir.InputInstr)
        )
        sites = {chain.op for chain in plan.checks}
        assert inputs[0] not in sites  # first input of the set: no check
        assert inputs[1] in sites  # second input checks the first

    def test_trivial_policies_produce_no_checks(self):
        compiled, plan = plan_for(
            "fn main() { let x = 1; Fresh(x); log(x); }"
        )
        assert plan.total_checks == 0

    def test_shared_driver_chains_are_distinct(self):
        """Two contexts through one driver get distinct bit positions."""
        compiled, plan = plan_for(
            "inputs ch;\n"
            "fn read() { let v = input(ch); return v; }\n"
            "fn main() { let consistent(1) a = read(); "
            "let consistent(1) b = read(); log(a, b); }"
        )
        assert len(plan.bit_chains) == 2
        ops = {chain.op for chain in plan.bit_chains}
        assert len(ops) == 1  # same static op, two chains

    def test_trigger_uids_cover_check_sites(self):
        compiled, plan = plan_for(
            "inputs ch;\n"
            "fn main() { let x = input(ch); Fresh(x); log(x); }"
        )
        for chain in plan.checks:
            assert chain.op in plan.trigger_uids


class TestBitVector:
    def _chain(self, label: int) -> Chain:
        return Chain(ids=(ir.InstrId("main", label),))

    def test_set_and_missing(self):
        bits = BitVector()
        c1, c2 = self._chain(1), self._chain(2)
        bits.set(c1)
        assert bits.missing((c1, c2)) == (c2,)

    def test_clear_resets_everything(self):
        bits = BitVector()
        bits.set(self._chain(1))
        bits.clear()
        assert bits.missing((self._chain(1),)) == (self._chain(1),)

    def test_missing_empty_requirements(self):
        assert BitVector().missing(()) == ()


class TestSamePlanAcrossConfigs:
    def test_plan_is_config_independent(self, weather_ocelot, weather_jit):
        # Policies come from the same annotated source; both plans must
        # check the same policy ids.
        plan_a = weather_ocelot.detector_plan()
        plan_b = weather_jit.detector_plan()
        pids_a = {c.pid for checks in plan_a.checks.values() for c in checks}
        pids_b = {c.pid for checks in plan_b.checks.values() for c in checks}
        assert pids_a == pids_b
