"""Compile-cache tests: content-addressed keying, hits, invalidation."""

import pytest

from repro.core.cache import CacheKey, CompileCache, compile_cached
from repro.core.pipeline import CONFIGS, PipelineOptions

SOURCE = """\
inputs temp;

fn main() {
  let t = input(temp);
  Fresh(t);
  log(t);
}
"""

OTHER_SOURCE = SOURCE.replace("log(t)", "log(t + 1)")


@pytest.fixture()
def cache():
    return CompileCache()


class TestKeying:
    def test_same_inputs_same_key(self):
        assert CacheKey.make(SOURCE, "ocelot") == CacheKey.make(SOURCE, "ocelot")

    def test_source_changes_key(self):
        assert CacheKey.make(SOURCE, "ocelot") != CacheKey.make(
            OTHER_SOURCE, "ocelot"
        )

    def test_config_changes_key(self):
        keys = {CacheKey.make(SOURCE, config) for config in CONFIGS}
        assert len(keys) == len(CONFIGS)

    def test_options_change_key(self):
        default = CacheKey.make(SOURCE, "ocelot", PipelineOptions())
        tweaked = CacheKey.make(
            SOURCE, "ocelot", PipelineOptions(include_trivial=True)
        )
        assert default != tweaked

    def test_default_options_key_matches_explicit_default(self):
        assert CacheKey.make(SOURCE, "ocelot") == CacheKey.make(
            SOURCE, "ocelot", PipelineOptions()
        )


class TestHitMiss:
    def test_second_compile_hits(self, cache):
        first = cache.get_or_compile(SOURCE, "ocelot")
        second = cache.get_or_compile(SOURCE, "ocelot")
        assert first is second
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.compiles == 1

    def test_info_variant_reports_cached_flag(self, cache):
        _, cached = cache.get_or_compile_with_info(SOURCE, "ocelot")
        assert not cached
        _, cached = cache.get_or_compile_with_info(SOURCE, "ocelot")
        assert cached

    def test_different_source_misses(self, cache):
        cache.get_or_compile(SOURCE, "ocelot")
        cache.get_or_compile(OTHER_SOURCE, "ocelot")
        assert cache.stats.misses == 2
        assert len(cache) == 2

    def test_different_options_miss(self, cache):
        cache.get_or_compile(SOURCE, "ocelot")
        cache.get_or_compile(
            SOURCE, "ocelot", PipelineOptions(include_trivial=True)
        )
        assert cache.stats.misses == 2

    def test_different_config_misses(self, cache):
        for config in CONFIGS:
            cache.get_or_compile(SOURCE, config)
        assert cache.stats.misses == len(CONFIGS)
        assert cache.stats.hits == 0


class TestInvalidation:
    def test_clear_forces_recompile(self, cache):
        first = cache.get_or_compile(SOURCE, "ocelot")
        cache.clear()
        assert len(cache) == 0
        second = cache.get_or_compile(SOURCE, "ocelot")
        assert first is not second
        assert cache.stats.misses == 1  # stats reset with the entries

    def test_edited_source_never_served_stale(self, cache):
        stale = cache.get_or_compile(SOURCE, "ocelot")
        fresh = cache.get_or_compile(OTHER_SOURCE, "ocelot")
        assert stale is not fresh
        assert cache.stats.hits == 0

    def test_eviction_respects_max_entries(self):
        cache = CompileCache(max_entries=2)
        cache.get_or_compile(SOURCE, "ocelot")
        cache.get_or_compile(SOURCE, "jit")
        cache.get_or_compile(SOURCE, "atomics")
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # the oldest entry (ocelot) was dropped, so it recompiles
        cache.get_or_compile(SOURCE, "ocelot")
        assert cache.stats.misses == 4

    def test_bad_max_entries_rejected(self):
        with pytest.raises(ValueError):
            CompileCache(max_entries=0)


class TestModuleHelpers:
    def test_compile_cached_uses_explicit_cache(self, cache):
        compiled = compile_cached(SOURCE, "ocelot", cache=cache)
        assert compile_cached(SOURCE, "ocelot", cache=cache) is compiled

    def test_builds_module_shares_global_cache(self):
        from repro.core.cache import GLOBAL_CACHE
        from repro.eval.builds import build

        compiled = build("greenhouse", "ocelot")
        assert build("greenhouse", "ocelot") is compiled
        before = GLOBAL_CACHE.stats.hits
        build("greenhouse", "ocelot")
        assert GLOBAL_CACHE.stats.hits == before + 1


class TestDiagnosticReplay:
    """A cache hit must surface the same pass diagnostics as the cold
    build -- verdicts served from cache silently vanishing would defeat
    any diagnostic-gated CLI (``repro lint`` being the sharpest case)."""

    def test_hit_carries_cold_build_diagnostics(self, cache):
        cold = cache.get_or_compile(SOURCE, "ocelot")
        assert cold.diagnostics, "cold build produced no diagnostics"
        hit, was_cached = cache.get_or_compile_with_info(SOURCE, "ocelot")
        assert was_cached
        assert hit.diagnostics == cold.diagnostics
        assert [d.render() for d in hit.diagnostics] == [
            d.render() for d in cold.diagnostics
        ]

    def test_replay_across_configs(self, cache):
        for config in CONFIGS:
            cold = cache.get_or_compile(SOURCE, config)
            hit, was_cached = cache.get_or_compile_with_info(SOURCE, config)
            assert was_cached, config
            assert hit.diagnostics == cold.diagnostics, config

    def test_lint_verdicts_stable_across_cache_hit(self, cache):
        from repro.analysis.staleness import analyze_staleness

        cold = cache.get_or_compile(SOURCE, "ocelot")
        cold_report = analyze_staleness(cold, probe=False)
        hit, was_cached = cache.get_or_compile_with_info(SOURCE, "ocelot")
        assert was_cached
        hit_report = analyze_staleness(hit, probe=False)
        assert [v.to_dict() for v in hit_report.verdicts] == [
            v.to_dict() for v in cold_report.verdicts
        ]
