"""Pass-based toolchain tests: pipelines, fingerprints, registry, emit.

Covers the API-redesign contracts: the three paper configs are
registered pass pipelines, reordered/modified pipelines produce distinct
cache keys, derived configs run through the campaign engine with
serial/parallel parity, and every stage artifact is dumpable.
"""

import pytest

from repro.core.cache import CacheKey, CompileCache
from repro.core.passes import (
    ARTIFACTS,
    BuildConfig,
    BuildContext,
    BuildPolicies,
    Check,
    InferRegions,
    Lower,
    PassManager,
    PipelineError,
    Taint,
    UnknownConfigError,
    Validate,
    VerifyIR,
    config_names,
    emit_artifact,
    get_config,
    pipeline_fingerprint,
    register_config,
    resolve_config,
)
from repro.core.pipeline import CONFIGS, compile_source
from repro.lang.parser import parse_program

SRC = (
    "inputs temp, pres, hum;\n"
    "fn main() {\n"
    "  let x = input(temp);\n"
    "  Fresh(x);\n"
    "  if x > 5 { alarm(); }\n"
    "  let consistent(1) y = input(pres);\n"
    "  let consistent(1) z = input(hum);\n"
    "  log(y, z);\n"
    "}"
)

ANALYSIS = (Validate(), Lower(), VerifyIR(), Taint(), BuildPolicies())


class TestRegistry:
    def test_paper_configs_registered(self):
        for name in CONFIGS:
            config = get_config(name)
            assert config.name == name
            assert config.passes

    def test_derived_configs_registered(self):
        names = config_names()
        assert "ocelot-noguard" in names
        assert "atomics-trivial" in names

    def test_unknown_name_lists_registered(self):
        with pytest.raises(UnknownConfigError, match="registered:"):
            get_config("turbo")
        with pytest.raises(ValueError):  # UnknownConfigError is a ValueError
            get_config("turbo")

    def test_enforces_flag_matches_check_pass(self):
        assert get_config("ocelot").enforces
        assert get_config("atomics").enforces
        assert not get_config("jit").enforces

    def test_resolve_accepts_instances_and_names(self):
        ocelot = get_config("ocelot")
        assert resolve_config("ocelot") is ocelot
        assert resolve_config(ocelot) is ocelot
        with pytest.raises(TypeError):
            resolve_config(42)

    def test_reregistering_same_pipeline_is_idempotent(self):
        ocelot = get_config("ocelot")
        clone = BuildConfig(name="ocelot", passes=ocelot.passes)
        assert register_config(clone) is ocelot

    def test_name_clash_with_different_pipeline_rejected(self):
        clash = BuildConfig(name="ocelot", passes=(*ANALYSIS, Check()))
        with pytest.raises(ValueError, match="different"):
            register_config(clash)

    def test_replacing_unknown_stage_rejected(self):
        with pytest.raises(ValueError, match="no stage"):
            get_config("jit").replacing(
                "jit-x", "bogus", infer_regions=InferRegions()
            )


class TestFingerprints:
    def test_same_pipeline_same_fingerprint(self):
        assert pipeline_fingerprint(ANALYSIS) == pipeline_fingerprint(ANALYSIS)

    def test_reordered_pipeline_changes_fingerprint(self):
        reordered = (Validate(), Lower(), Taint(), VerifyIR(), BuildPolicies())
        assert pipeline_fingerprint(ANALYSIS) != pipeline_fingerprint(reordered)

    def test_pass_parameter_changes_fingerprint(self):
        a = (*ANALYSIS, InferRegions(), Check())
        b = (*ANALYSIS, InferRegions(include_trivial=True), Check())
        assert pipeline_fingerprint(a) != pipeline_fingerprint(b)

    def test_all_registered_configs_have_distinct_fingerprints(self):
        prints = {get_config(n).fingerprint() for n in config_names()}
        assert len(prints) == len(config_names())

    def test_cache_key_uses_pipeline_fingerprint(self):
        reordered = BuildConfig(
            name="reordered-analysis",
            passes=(Validate(), Lower(), Taint(), VerifyIR(), BuildPolicies(), Check()),
        )
        straight = BuildConfig(
            name="straight-analysis",
            passes=(*ANALYSIS, Check()),
        )
        assert CacheKey.make(SRC, reordered) != CacheKey.make(SRC, straight)

    def test_identical_pipelines_share_cache_entries(self):
        # Two configs with different names but the same passes are the
        # same build; the cache must deduplicate them.
        cache = CompileCache()
        alias_a = BuildConfig(name="alias-a", passes=get_config("ocelot").passes)
        alias_b = BuildConfig(name="alias-b", passes=get_config("ocelot").passes)
        first = cache.get_or_compile(SRC, alias_a)
        second = cache.get_or_compile(SRC, alias_b)
        assert first is second
        assert cache.stats.hits == 1

    def test_derived_config_key_differs_from_parent(self):
        assert CacheKey.make(SRC, "ocelot") != CacheKey.make(SRC, "ocelot-noguard")
        assert CacheKey.make(SRC, "atomics") != CacheKey.make(SRC, "atomics-trivial")


class TestPassManager:
    def test_records_one_timing_per_pass_execution(self):
        config = get_config("ocelot")
        compiled = compile_source(SRC, config)
        assert [t.stage for t in compiled.timings] == [
            p.name for p in config.passes
        ]
        assert all(t.seconds >= 0 for t in compiled.timings)
        assert [t.index for t in compiled.timings] == list(
            range(len(config.passes))
        )

    def test_diagnostics_are_structured(self):
        compiled = compile_source(SRC, "ocelot")
        stages = {d.stage for d in compiled.diagnostics}
        assert {"validate", "lower", "taint", "policies", "check"} <= stages
        assert all(d.level in ("info", "warning", "error") for d in compiled.diagnostics)

    def test_jit_records_check_failures_as_error_diagnostics(self):
        compiled = compile_source(SRC, "jit")
        errors = [d for d in compiled.diagnostics if d.level == "error"]
        assert errors
        assert len(errors) == len(compiled.check.failures)

    def test_empty_pipeline_rejected(self):
        with pytest.raises(PipelineError):
            PassManager(())

    def test_missing_lower_is_a_clear_error(self):
        ctx = BuildContext(program=parse_program(SRC))
        with pytest.raises(PipelineError, match="Lower"):
            PassManager((Taint(),)).run(ctx)

    def test_unchecked_pipeline_never_claims_enforcement(self):
        unchecked = BuildConfig(name="unchecked", passes=ANALYSIS)
        compiled = compile_source(SRC, unchecked)
        assert not compiled.enforces_policies
        assert any("no Check pass" in f for f in compiled.check.failures)


class TestDerivedConfigs:
    def test_noguard_drops_uart_regions(self):
        from repro.ir import instructions as ir

        guarded = compile_source(SRC, "ocelot")
        noguard = compile_source(SRC, "ocelot-noguard")
        origins = lambda c: {  # noqa: E731
            i.origin
            for i in c.module.all_instrs()
            if isinstance(i, ir.AtomicStart)
        }
        assert "uart" in origins(guarded)
        assert "uart" not in origins(noguard)
        assert noguard.check.ok

    def test_atomics_trivial_enforces(self):
        compiled = compile_source(SRC, "atomics-trivial")
        assert compiled.check.ok
        assert len(compiled.regions) >= len(compile_source(SRC, "atomics").regions)


class TestDetectorPlanCache:
    def test_plan_built_once_and_reused(self):
        compiled = compile_source(SRC, "ocelot")
        assert compiled.detector_plan() is compiled.detector_plan()
        assert compiled.detector_plan().total_checks > 0


class TestArtifacts:
    @pytest.fixture(scope="class")
    def compiled(self):
        return compile_source(SRC, "ocelot")

    @pytest.mark.parametrize("kind", sorted(ARTIFACTS))
    def test_every_artifact_renders(self, compiled, kind):
        text = emit_artifact(compiled, kind)
        assert isinstance(text, str) and text

    def test_unknown_artifact_lists_known(self, compiled):
        with pytest.raises(ValueError, match="known:"):
            emit_artifact(compiled, "bytecode")

    def test_timings_artifact_totals(self, compiled):
        text = emit_artifact(compiled, "timings")
        assert "total" in text
        assert "check" in text


class TestCampaignCustomConfigs:
    """Derived + custom configs through the campaign engine (serial vs
    parallel bit-identical)."""

    def spec(self, configs):
        from repro.eval.campaign import CampaignSpec, EnvironmentSpec, SupplySpec

        return CampaignSpec(
            name="derived",
            apps=("cem", "greenhouse"),
            configs=configs,
            environments=(EnvironmentSpec(env_seed=0),),
            supplies=(SupplySpec.from_profile(seed_offset=23),),
            seeds=(0,),
            budget_cycles=30_000,
        )

    def test_derived_configs_sweep_with_executor_parity(self):
        from repro.eval.campaign import (
            MultiprocessExecutor,
            SerialExecutor,
            run_campaign,
        )

        spec = self.spec(("ocelot-noguard", "atomics-trivial"))
        serial = run_campaign(spec, SerialExecutor())
        parallel = run_campaign(spec, MultiprocessExecutor(processes=2))
        assert serial.fingerprint() == parallel.fingerprint()
        assert {j.config for j in serial.jobs} == {
            "ocelot-noguard",
            "atomics-trivial",
        }
        for job in serial.jobs:
            assert job.completed_runs > 0
            assert job.violating_runs == 0  # both derived configs enforce

    def test_build_config_instances_accepted_and_normalized(self):
        custom = BuildConfig(
            name="ocelot-trivial-regions",
            passes=get_config("ocelot")
            .replacing(
                "ocelot-trivial-regions",
                "test ablation",
                infer_regions=InferRegions(include_trivial=True),
                check=Check(include_trivial=True),
            )
            .passes,
        )
        spec = self.spec((custom, "jit"))
        assert spec.configs == ("ocelot-trivial-regions", "jit")
        from repro.eval.campaign import run_campaign

        result = run_campaign(spec)
        assert {j.config for j in result.jobs} == {"ocelot-trivial-regions", "jit"}

    def test_unknown_config_name_is_a_campaign_error(self):
        from repro.eval.campaign import CampaignError

        with pytest.raises(CampaignError, match="registered:"):
            self.spec(("warpspeed",))
