"""Telemetry: determinism, non-perturbation, metrics, forensics.

The contract the telemetry layer stands on:

* the sim-time Chrome-trace export is a pure function of the
  observation trace -- same seed + spec gives byte-identical JSON;
* enabling the wall-clock tracer never changes execution -- stats,
  observation events, NV state, and detector query counts are
  bit-identical tracing-on vs tracing-off, on both engines
  (hypothesis-tested over generated programs);
* the metrics registry serializes deterministically behind the
  ``repro-metrics-1`` schema;
* violation forensics names the causing observation chain (sensor
  read, tau, staleness, provenance path, policy window).
"""

from __future__ import annotations

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps import BENCHMARKS
from repro.core.cache import GLOBAL_CACHE
from repro.eval.profiles import STANDARD_PROFILE
from repro.runtime.engine import ENGINE_FAST, ENGINE_REFERENCE, create_machine
from repro.runtime.supply import ContinuousPower
from repro.sensors.environment import Environment, random_walk, steps
from repro import telemetry
from repro.telemetry.metrics import MetricsRegistry
from tests.strategies import program_sources
from repro.core.pipeline import compile_source


def _gen_env(seed: int) -> Environment:
    return Environment(
        {
            "alpha": steps([3, 11, 7], 900),
            "beta": random_walk(20, 5, seed=seed, interval=300),
            "gamma": steps([-4, 18], 1500),
        }
    )


def _run(compiled, engine, env=None, seed=7):
    machine = create_machine(
        engine,
        compiled,
        env if env is not None else _gen_env(3),
        STANDARD_PROFILE.make_supply(seed=seed),
    )
    result = machine.run()
    return machine, result


class TestSimTimeTraceDeterminism:
    def test_same_seed_same_bytes(self):
        meta = BENCHMARKS["tire"]
        compiled = GLOBAL_CACHE.get_or_compile(meta.source, "jit")
        docs = []
        for _ in range(2):
            machine = create_machine(
                ENGINE_FAST,
                compiled,
                meta.env_factory(5),
                STANDARD_PROFILE.make_supply(seed=3),
            )
            result = machine.run()
            docs.append(telemetry.chrome_trace_json(result.trace))
        assert docs[0] == docs[1]

    def test_chrome_trace_shape(self):
        meta = BENCHMARKS["tire"]
        compiled = GLOBAL_CACHE.get_or_compile(meta.source, "ocelot")
        machine = create_machine(
            ENGINE_FAST, compiled, meta.env_factory(5), ContinuousPower()
        )
        result = machine.run()
        doc = telemetry.chrome_trace(result.trace)
        assert doc["traceEvents"]
        for event in doc["traceEvents"]:
            assert event["ph"] in ("i", "B", "E", "X", "M")
            assert "pid" in event and "tid" in event and "name" in event
            if event["ph"] != "M":
                assert isinstance(event["ts"], (int, float))
        # the document round-trips through JSON (Perfetto-loadable)
        assert json.loads(json.dumps(doc))["otherData"]["schema"] == (
            telemetry.TRACE_SCHEMA
        )
        # regions open and close in pairs
        opens = sum(1 for e in doc["traceEvents"] if e["ph"] == "B")
        closes = sum(1 for e in doc["traceEvents"] if e["ph"] == "E")
        assert opens == closes

    def test_multi_activation_traces_tag_activation(self):
        meta = BENCHMARKS["tire"]
        compiled = GLOBAL_CACHE.get_or_compile(meta.source, "ocelot")
        traces = []
        for _ in range(2):
            machine = create_machine(
                ENGINE_FAST, compiled, meta.env_factory(5), ContinuousPower()
            )
            traces.append(machine.run().trace)
        doc = telemetry.chrome_trace(traces)
        tagged = {
            e["args"]["activation"]
            for e in doc["traceEvents"]
            if "args" in e and "activation" in e["args"]
        }
        assert tagged == {0, 1}


class TestTracingNeverPerturbs:
    """Wall-clock tracing on vs off: bit-parity on both engines."""

    def _parity(self, compiled, engine, env_factory=None):
        baseline_machine, baseline = _run(
            compiled, engine, env_factory() if env_factory else None
        )
        telemetry.enable_tracing()
        try:
            traced_machine, traced = _run(
                compiled, engine, env_factory() if env_factory else None
            )
        finally:
            telemetry.disable_tracing()
        assert baseline.stats == traced.stats
        assert baseline.trace.events == traced.trace.events
        assert baseline.ret == traced.ret
        assert baseline.detector_queries == traced.detector_queries
        assert baseline_machine.tau == traced_machine.tau
        assert (
            baseline_machine.nv.snapshot_values()
            == traced_machine.nv.snapshot_values()
        )

    def test_benchmarks_both_engines(self):
        for app in ("tire", "greenhouse"):
            meta = BENCHMARKS[app]
            for config in ("ocelot", "jit"):
                compiled = GLOBAL_CACHE.get_or_compile(meta.source, config)
                for engine in (ENGINE_REFERENCE, ENGINE_FAST):
                    self._parity(
                        compiled, engine, lambda m=meta: m.env_factory(5)
                    )

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        source=program_sources(min_annotations=1),
        config=st.sampled_from(["ocelot", "jit"]),
        engine=st.sampled_from([ENGINE_REFERENCE, ENGINE_FAST]),
    )
    def test_generated_programs(self, source, config, engine):
        compiled = compile_source(source, config)
        self._parity(compiled, engine)

    def test_wall_tracer_records_activation_spans(self):
        meta = BENCHMARKS["tire"]
        compiled = GLOBAL_CACHE.get_or_compile(meta.source, "jit")
        wall = telemetry.enable_tracing()
        try:
            _run(compiled, ENGINE_FAST, meta.env_factory(5))
        finally:
            telemetry.disable_tracing()
        spans = [e for e in wall.events if e["ph"] == "X"]
        assert spans and spans[0]["name"] == "activation"
        assert spans[0]["dur"] >= 0
        # disabled again: nothing records
        assert telemetry.tracer() is None


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc(4)
        registry.gauge("g").set(2.5)
        for v in (1.0, 3.0):
            registry.histogram("h").observe(v)
        doc = registry.to_dict(command="test")
        assert doc["schema"] == telemetry.METRICS_SCHEMA
        assert doc["counters"] == {"a": 5}
        assert doc["gauges"] == {"g": 2.5}
        assert doc["histograms"]["h"] == {
            "count": 2,
            "total": 4.0,
            "min": 1.0,
            "max": 3.0,
            "mean": 2.0,
        }
        assert doc["command"] == "test"

    def test_timer_and_seconds(self):
        registry = MetricsRegistry()
        with registry.timer("t"):
            pass
        assert registry.histogram("t").count == 1
        assert registry.seconds("t") >= 0.0
        assert registry.seconds("missing") == 0.0

    def test_json_is_deterministic(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("z").inc(2)
            registry.counter("a").inc(1)
            registry.gauge("m").set(1)
            return registry.to_json(command="x")

        assert build() == build()

    def test_absorb_run_counts_detector_queries(self):
        meta = BENCHMARKS["tire"]
        compiled = GLOBAL_CACHE.get_or_compile(meta.source, "ocelot")
        machine = create_machine(
            ENGINE_FAST, compiled, meta.env_factory(5), ContinuousPower()
        )
        result = machine.run()
        registry = MetricsRegistry()
        telemetry.absorb_run(registry, result)
        doc = registry.to_dict()
        assert doc["counters"]["run.detector_queries"] == (
            machine.detector_queries
        )
        assert doc["counters"]["run.instructions"] == result.stats.instructions


class TestDetectorQueriesPlumbing:
    """Satellite: machine counter -> record -> aggregate -> campaign."""

    def test_run_result_carries_queries(self):
        meta = BENCHMARKS["tire"]
        compiled = GLOBAL_CACHE.get_or_compile(meta.source, "ocelot")
        machine = create_machine(
            ENGINE_FAST, compiled, meta.env_factory(5), ContinuousPower()
        )
        result = machine.run()
        assert result.detector_queries == machine.detector_queries > 0

    def test_activation_record_and_summary(self):
        from repro.runtime.harness import run_activations

        meta = BENCHMARKS["tire"]
        compiled = GLOBAL_CACHE.get_or_compile(meta.source, "ocelot")
        outcome = run_activations(
            compiled,
            meta.env_factory(5),
            STANDARD_PROFILE.make_supply(seed=2),
            budget_cycles=40_000,
        )
        assert outcome.records
        total = sum(r.detector_queries for r in outcome.records)
        assert total > 0
        assert outcome.summary().detector_queries == total

    def test_class_aggregate_sums_and_roundtrips(self):
        from repro.fleet.aggregate import ClassAggregate
        from repro.runtime.harness import ActivationRecord

        agg = ClassAggregate(app="tire", config="ocelot")
        record = ActivationRecord(
            index=0,
            completed=True,
            violations=0,
            cycles_on=10,
            cycles_off=0,
            reboots=0,
            detector_queries=7,
        )
        agg.observe(record)
        agg.observe_many(record, 3)
        assert agg.detector_queries == 28
        clone = ClassAggregate.from_dict(agg.to_dict())
        assert clone.detector_queries == 28
        clone.merge(agg)
        assert clone.detector_queries == 56


class TestForensics:
    def _violating_traces(self):
        from repro.verify import VerifyBounds, verify_program

        meta = BENCHMARKS["tire"]
        compiled = GLOBAL_CACHE.get_or_compile(meta.source, "jit")
        env = Environment.constant_for(compiled.module.channels, 0)
        verdict = verify_program(
            compiled,
            env,
            VerifyBounds(max_activations=1, max_failures=1),
        )
        assert verdict.kind == "counterexample"
        return compiled, verdict

    def test_counterexample_carries_forensics(self):
        compiled, verdict = self._violating_traces()
        assert verdict.forensics
        report = verdict.forensics[0]
        assert report.kind == "fresh"
        # the causing observation chain is named end to end
        [missing] = report.missing
        assert missing.channel == "accel"
        assert missing.read_tau is not None
        assert missing.staleness > 0
        assert missing.reboots_between == 1
        assert missing.chains and "read_accel" in missing.chains[0]
        text = verdict.certificate()
        assert "forensics" in text and "stale by" in text

    def test_report_dict_roundtrips_json(self):
        _, verdict = self._violating_traces()
        payload = [r.to_dict() for r in verdict.forensics]
        assert json.loads(json.dumps(payload)) == payload

    def test_no_violations_no_reports(self):
        meta = BENCHMARKS["tire"]
        compiled = GLOBAL_CACHE.get_or_compile(meta.source, "ocelot")
        machine = create_machine(
            ENGINE_FAST, compiled, meta.env_factory(5), ContinuousPower()
        )
        result = machine.run()
        reports = telemetry.explain_traces([result.trace], compiled.policies)
        assert reports == []
        assert "nothing to explain" in telemetry.render_reports(reports)


class TestCliTelemetry:
    def test_trace_command_byte_identical(self, tmp_path, capsys):
        from repro.cli import main

        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            assert (
                main(
                    [
                        "trace",
                        "tire",
                        "--config",
                        "jit",
                        "--intermittent",
                        "--seed",
                        "3",
                        "--out",
                        str(path),
                    ]
                )
                == 0
            )
        capsys.readouterr()
        assert paths[0].read_bytes() == paths[1].read_bytes()
        doc = json.loads(paths[0].read_text())
        assert doc["otherData"]["schema"] == telemetry.TRACE_SCHEMA

    def test_explain_command_names_chain(self, tmp_path, capsys):
        from repro.cli import main

        schedule = tmp_path / "cex.json"
        code = main(
            [
                "verify",
                "tire",
                "--config",
                "jit",
                "--max-failures",
                "1",
                "--schedule-out",
                str(schedule),
            ]
        )
        assert code == 1
        capsys.readouterr()
        assert (
            main(
                [
                    "explain",
                    "tire",
                    "--config",
                    "jit",
                    "--schedule",
                    str(schedule),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "violation [tau=" in out
        assert "via chain" in out
        assert "stale by" in out

    def test_metrics_out_flag(self, tmp_path, capsys):
        from repro.cli import main

        metrics = tmp_path / "metrics.json"
        assert (
            main(["run", "tire", "--metrics-out", str(metrics)]) == 0
        )
        capsys.readouterr()
        doc = json.loads(metrics.read_text())
        assert doc["schema"] == telemetry.METRICS_SCHEMA
        assert doc["command"] == "run"
        assert doc["counters"]["run.detector_queries"] > 0

    def test_fleet_metrics_export_memo_counters(self, tmp_path, capsys):
        from repro.cli import main

        spec = tmp_path / "fleet.json"
        spec.write_text(
            json.dumps(
                {
                    "name": "metrics-fleet",
                    "fleet_seed": 3,
                    "budget_cycles": 15000,
                    "classes": [
                        {
                            "name": "tire",
                            "app": "tire",
                            "config": "ocelot",
                            "count": 6,
                            "supply": {
                                "name": "rf",
                                "kind": "harvest",
                                "harvest_rate": 300,
                            },
                            "harvest_jitter": 0.5,
                        }
                    ],
                }
            )
        )
        metrics = tmp_path / "metrics.json"
        memo_dir = tmp_path / "memo"
        args = [
            "fleet",
            str(spec),
            "--executor",
            "vector",
            "--memo-dir",
            str(memo_dir),
            "--metrics-out",
            str(metrics),
        ]
        assert main(args) == 0  # cold: populates the on-disk store
        assert main(args) == 0  # warm: loads it back
        capsys.readouterr()
        counters = json.loads(metrics.read_text())["counters"]
        for key in (
            "fleet.memo.hits",
            "fleet.memo.misses",
            "fleet.memo.evictions",
            "fleet.memo.disk_loads",
        ):
            assert key in counters
        assert counters["fleet.memo.disk_loads"] > 0
        assert counters["fleet.memo.misses"] > 0

    def test_quiet_silences_status(self, tmp_path, capsys):
        from repro.cli import main

        metrics = tmp_path / "metrics.json"
        assert (
            main(["run", "tire", "--quiet", "--metrics-out", str(metrics)])
            == 0
        )
        captured = capsys.readouterr()
        assert "metrics written" not in captured.err
        assert metrics.exists()
