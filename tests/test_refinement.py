"""Intermittent-matches-continuous refinement tests.

The paper's correctness criterion: "the continuous execution is the
specification of correct behaviour" -- every committed behaviour of an
Ocelot intermittent execution must be producible by *some* continuous
execution (started at some time).  We check this on the Figure 2 weather
program: each committed log output of an intermittent run must equal the
output of a continuous run launched at some observed region-entry time.
"""

from repro.core.pipeline import compile_source
from repro.runtime import observations as obs
from repro.runtime.executor import Machine
from repro.runtime.supply import ContinuousPower, FailurePoint, ScheduledFailures
from repro.sensors.environment import Environment, steps

from tests.conftest import WEATHER_SRC


def continuous_outputs_at(compiled, env, start_tau):
    machine = Machine(
        compiled.module,
        env,
        ContinuousPower(),
        plan=compiled.detector_plan(),
        start_tau=start_tau,
    )
    result = machine.run()
    assert result.stats.completed
    return [(o.op, o.values) for o in result.trace.outputs]


class TestWeatherRefinement:
    def make_env(self):
        return Environment(
            {
                "temp": steps([2, 9, 4], 3000),
                "pres": steps([100, 60, 85], 3000),
                "hum": steps([20, 85, 40], 3000),
            }
        )

    def test_committed_log_matches_some_continuous_run(self):
        compiled = compile_source(WEATHER_SRC, "ocelot")
        env = self.make_env()
        plan = compiled.detector_plan()
        # Fail between the two consistent inputs: the worst case.
        hum_chain = next(
            c for c in sorted(plan.checks)
            if any(k.kind == "consistent" for k in plan.checks[c])
        )
        supply = ScheduledFailures([FailurePoint(chain=hum_chain)], off_cycles=4000)
        machine = Machine(compiled.module, env, supply, plan=plan)
        result = machine.run()
        assert result.stats.completed
        assert result.stats.violations == 0

        committed_logs = [
            o.values for o in result.trace.outputs if o.op == "log"
        ]
        assert committed_logs
        final_log = committed_logs[-1]

        # The final log must match a continuous execution started at some
        # observed moment of the trace (we try every region entry and
        # reboot time, plus the start).
        candidate_taus = {0}
        for event in result.trace:
            if isinstance(event, (obs.RegionEnterObs, obs.RebootObs)):
                candidate_taus.add(event.tau)
        matches = []
        for tau in sorted(candidate_taus):
            outputs = continuous_outputs_at(compiled, self.make_env(), tau)
            logs = [values for op, values in outputs if op == "log"]
            if logs and logs[-1] == final_log:
                matches.append(tau)
        assert matches, (final_log, sorted(candidate_taus))

    def test_jit_can_commit_unrefinable_log(self):
        """The Figure 2 storm bug: JIT can log a (pres, hum) pair that no
        continuous execution produces."""
        compiled = compile_source(WEATHER_SRC, "jit")
        env = Environment(
            {
                # pres/hum flip together between (100, 20) and (60, 85);
                # off-time 3000 straddles a flip.
                "temp": steps([2, 2], 6000),
                "pres": steps([100, 60], 3000),
                "hum": steps([20, 85], 3000),
            }
        )
        plan = compiled.detector_plan()
        hum_chain = next(
            c for c in sorted(plan.checks)
            if any(k.kind == "consistent" for k in plan.checks[c])
        )
        supply = ScheduledFailures([FailurePoint(chain=hum_chain)], off_cycles=3000)
        machine = Machine(compiled.module, env, supply, plan=plan)
        result = machine.run()
        assert result.stats.completed
        (log,) = [o.values for o in result.trace.outputs if o.op == "log"]
        # The torn pair mixes the two world states.
        assert log in ((100, 85), (60, 20)), log
        assert result.stats.violations >= 1
