"""Regression tests for the hot-path bugfixes that shipped with the
pre-decoded engine: single evaluation of ``work`` amounts, detector-plan
encapsulation, and the sharded fleet executor's small-batch fallback.
(The ``derive_seed`` part-boundary fix is covered in test_energy.py.)
"""

from __future__ import annotations

import pytest

from repro.analysis.provenance import Chain
from repro.core.pipeline import compile_source
from repro.fleet import ShardedFleetExecutor, run_fleet
from repro.ir.instructions import InstrId
from repro.runtime.detector import Check, DetectorPlan
from repro.runtime.executor import Machine
from repro.runtime.supply import ContinuousPower
from repro.sensors.environment import Environment, constant

WORK_SRC = """\
inputs ch;

fn main() {
  let n = input(ch);
  work(n * 3);
  log(n);
}
"""


class TestWorkSingleEvaluation:
    def test_work_expression_evaluated_once_per_step(self):
        """The cycle expression used to be evaluated twice per executed
        ``work``: once for the comparator estimate, once for execution."""
        compiled = compile_source(WORK_SRC, "jit")
        env = Environment({"ch": constant(5)})
        machine = Machine(
            compiled.module, env, ContinuousPower(),
            plan=compiled.detector_plan(),
        )
        work_evals = 0
        original_eval = machine.eval

        def counting_eval(expr):
            nonlocal work_evals
            from repro.lang import ast as lang_ast

            if isinstance(expr, lang_ast.Binary) and expr.op == "*":
                work_evals += 1
            return original_eval(expr)

        machine.eval = counting_eval
        result = machine.run()
        assert result.stats.completed
        # One dynamic execution of the work instruction => one evaluation.
        assert work_evals == 1

    def test_work_cycles_still_charged_correctly(self):
        compiled = compile_source(WORK_SRC, "jit")
        env = Environment({"ch": constant(5)})
        machine = Machine(compiled.module, env, ContinuousPower())
        result = machine.run()
        # input(40) + work(15) + log(60) + assorted alu/ret cycles.
        assert result.stats.cycles_on >= 40 + 15 + 60


class TestDetectorPlanEncapsulation:
    def _plan(self):
        site = Chain(ids=(InstrId("main", 1),))
        required = (Chain(ids=(InstrId("main", 2),)),)
        check = Check(site=site, pid="fresh@main:1", kind="fresh", required=required)
        return site, check, DetectorPlan(
            bit_chains=frozenset(required),
            checks={site: [check]},
            trigger_uids=frozenset({site.op}),
        )

    def test_checks_at_returns_a_copy(self):
        site, check, plan = self._plan()
        got = plan.checks_at(site)
        assert isinstance(got, tuple)
        assert got == (check,)
        # The historical list return let callers corrupt the plan:
        # plan.checks_at(chain).clear() silently disabled detection.
        assert plan.checks[site] == [check]
        assert plan.checks_at(site) == (check,)

    def test_checks_at_unknown_chain_is_empty_tuple(self):
        _, _, plan = self._plan()
        assert plan.checks_at(Chain(ids=(InstrId("main", 99),))) == ()


class TestShardedFallback:
    def _spec(self, devices: int):
        from tests.test_fleet import small_spec

        return small_spec().with_total_devices(devices)

    def test_single_process_falls_back_to_serial(self):
        executor = ShardedFleetExecutor(processes=1)
        result = run_fleet(self._spec(8), executor)
        assert executor.used == "serial"
        assert result.executor == "sharded"
        assert result.executor_used == "serial"

    def test_small_batches_fall_back_to_serial(self):
        # 8 devices over 4 workers = 2 per shard, far below the threshold:
        # pool setup would cost more than the sharding wins.
        executor = ShardedFleetExecutor(processes=4, min_devices_per_shard=16)
        result = run_fleet(self._spec(8), executor)
        assert executor.used == "serial"
        assert result.executor_used == "serial"

    def test_large_batches_still_shard(self):
        executor = ShardedFleetExecutor(processes=2, min_devices_per_shard=2)
        result = run_fleet(self._spec(8), executor)
        assert executor.used == "sharded"
        assert result.executor_used == "sharded"

    def test_fallback_and_sharded_aggregates_are_identical(self):
        from repro.fleet import aggregate_fingerprint

        spec = self._spec(8)
        serial = run_fleet(spec, ShardedFleetExecutor(processes=1))
        sharded = run_fleet(
            spec, ShardedFleetExecutor(processes=2, min_devices_per_shard=2)
        )
        assert aggregate_fingerprint(serial) == aggregate_fingerprint(sharded)

    def test_report_records_engine_and_executor_used(self):
        result = run_fleet(self._spec(4), ShardedFleetExecutor(processes=1))
        payload = result.to_dict()
        assert payload["executor"] == "sharded"
        assert payload["executor_used"] == "serial"
        assert payload["engine"] == "fast"

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError, match="min_devices_per_shard"):
            ShardedFleetExecutor(min_devices_per_shard=0)

    def test_explicit_shard_count_is_honored(self):
        # An explicit shards= request bypasses the small-batch threshold:
        # the caller asked for that split, serial fallback applies only
        # when there is genuinely no parallelism (one process/shard).
        executor = ShardedFleetExecutor(
            processes=2, shards=2, min_devices_per_shard=16
        )
        result = run_fleet(self._spec(8), executor)
        assert executor.used == "sharded"
        assert result.executor_used == "sharded"

    def test_many_workers_right_size_shards_instead_of_serial(self):
        # 24 devices on 16 nominal workers: 24 < 16*4, but right-sizing
        # to 24//4 = 6 shards keeps the batch parallel instead of
        # silently dropping to serial.
        executor = ShardedFleetExecutor(processes=16, min_devices_per_shard=4)
        result = run_fleet(self._spec(24), executor)
        assert executor.used == "sharded"
        assert result.executor_used == "sharded"


class TestSeedSchemeFingerprint:
    def test_checkpoint_fingerprint_binds_seed_scheme(self, monkeypatch):
        """A checkpoint written under an older seed-derivation scheme
        must fingerprint-mismatch, not resume into a mixed aggregate."""
        from tests.test_fleet import small_spec

        spec = small_spec()
        current = spec.fingerprint()
        monkeypatch.setattr("repro.fleet.spec.SEED_SCHEME", "legacy-join")
        assert spec.fingerprint() != current


class TestPreDecodedCodeValidation:
    def test_cost_model_mismatch_rejected(self):
        from repro.apps import BENCHMARKS
        from repro.core.cache import GLOBAL_CACHE
        from repro.runtime.engine import EngineError, FastMachine, code_for

        meta = BENCHMARKS["tire"]
        compiled = GLOBAL_CACHE.get_or_compile(meta.source, "ocelot")
        plan = compiled.detector_plan()
        code = code_for(compiled, plan=plan)  # decoded under DEFAULT_COSTS
        with pytest.raises(EngineError, match="cost model"):
            FastMachine(
                compiled.module,
                meta.env_factory(0),
                ContinuousPower(),
                costs=meta.cost_model(),
                plan=plan,
                code=code,
            )

    def test_equal_but_fresh_plans_share_the_decode(self):
        from repro.apps import BENCHMARKS
        from repro.core.cache import GLOBAL_CACHE
        from repro.runtime.detector import build_detector_plan
        from repro.runtime.engine import code_for

        meta = BENCHMARKS["greenhouse"]
        compiled = GLOBAL_CACHE.get_or_compile(meta.source, "ocelot")
        first = code_for(compiled, plan=build_detector_plan(compiled.policies))
        before = len(compiled._engine_code)
        again = code_for(compiled, plan=build_detector_plan(compiled.policies))
        assert first is again
        assert len(compiled._engine_code) == before

    def test_fresh_equal_plan_accepted_end_to_end(self):
        """create_machine with a fresh (equal, non-identical) plan must
        reuse the cached decode, not reject it on plan identity."""
        from repro.apps import BENCHMARKS
        from repro.core.cache import GLOBAL_CACHE
        from repro.runtime.detector import build_detector_plan
        from repro.runtime.engine import create_machine

        meta = BENCHMARKS["greenhouse"]
        compiled = GLOBAL_CACHE.get_or_compile(meta.source, "ocelot")
        results = [
            create_machine(
                "fast",
                compiled,
                meta.env_factory(0),
                ContinuousPower(),
                plan=build_detector_plan(compiled.policies),
            ).run()
            for _ in range(2)
        ]
        assert results[0].stats == results[1].stats
