"""Counterexample schedules: JSON round-trips and supply conventions.

A schedule emitted by ``verify`` must be a plain document a later
session (or a campaign worker) can load and replay byte-exactly: the
JSON round-trip is lossless, the underlying :class:`ScheduledFailures`
supply honors the fleet/campaign ``spawn``/``reseed`` conventions (a
schedule supply is seed-invariant and re-arms cleanly), and a schedule
loaded from disk replays to identical violations run after run on both
engines.
"""

from __future__ import annotations

import pytest

from repro.apps import BENCHMARKS
from repro.core.pipeline import compile_source
from repro.eval.campaign import SUPPLY_SCHEDULE, CampaignError, SupplySpec
from repro.ir.instructions import InstrId
from repro.runtime.engine import ENGINE_FAST, ENGINE_REFERENCE
from repro.runtime.supply import FailurePoint, ScheduledFailures
from repro.sensors.environment import Environment
from repro.verify import (
    Schedule,
    ScheduleError,
    VerifyBounds,
    replay_schedule,
    verify_program,
)


@pytest.fixture(scope="module")
def jit_counterexample():
    compiled = compile_source(BENCHMARKS["tire"].source, config="jit")
    env = Environment.constant_for(compiled.module.channels, 0)
    verdict = verify_program(
        compiled, env, VerifyBounds(max_failures=1), target="tire", config="jit"
    )
    assert verdict.counterexample is not None
    return compiled, env, verdict.counterexample


class TestJsonRoundtrip:
    def test_lossless(self, jit_counterexample):
        _, _, schedule = jit_counterexample
        assert Schedule.from_json(schedule.to_json()) == schedule

    def test_hand_written_document(self):
        schedule = Schedule.from_dict(
            {
                "format": "repro-schedule-1",
                "off_cycles": 5000,
                "activations": 2,
                "points": [{"func": "main", "label": 7, "occurrence": 3}],
            }
        )
        assert schedule.points == (
            FailurePoint(uid=InstrId("main", 7), occurrence=3),
        )
        assert schedule.off_cycles == 5000 and schedule.activations == 2

    @pytest.mark.parametrize(
        "doc",
        [
            {"format": "nope", "points": []},
            {"points": []},
            {"format": "repro-schedule-1", "points": [{"func": "m"}]},
            {
                "format": "repro-schedule-1",
                "points": [{"func": "m", "label": 1, "occurrence": 0}],
            },
        ],
    )
    def test_malformed_documents_rejected(self, doc):
        with pytest.raises(ScheduleError):
            Schedule.from_dict(doc)

    def test_invalid_json_rejected(self):
        with pytest.raises(ScheduleError):
            Schedule.from_json("{not json")


class TestSupplyConventions:
    def test_spawn_and_reseed_rearm(self, jit_counterexample):
        compiled, env, schedule = jit_counterexample
        supply = schedule.to_supply()
        point = schedule.points[0]
        # Fire the whole schedule by feeding it its own trigger attempts.
        for _ in range(point.occurrence):
            fired = supply.fail_before(point.uid)
        assert fired and supply.all_fired
        assert not supply.fail_before(point.uid)  # never re-arms in place
        # A spawned child of a *fired* supply starts fully re-armed, the
        # fleet/campaign convention for per-device supplies.
        child = supply.spawn(seed=1234)
        assert not child.all_fired
        assert child.off_cycles == supply.off_cycles
        supply.reseed(seed=0)
        assert not supply.all_fired
        for _ in range(point.occurrence):
            fired = supply.fail_before(point.uid)
        assert fired

    def test_schedule_supply_is_seed_invariant(self, jit_counterexample):
        _, _, schedule = jit_counterexample
        spec = schedule.to_supply_spec()
        a, b = spec.build(seed=0), spec.build(seed=999)
        assert isinstance(a, ScheduledFailures)
        assert [(p.uid, p.occurrence) for p in a.points] == [
            (p.uid, p.occurrence) for p in b.points
        ]
        assert a.off_cycles == b.off_cycles

    def test_supply_spec_roundtrip(self, jit_counterexample):
        _, _, schedule = jit_counterexample
        spec = schedule.to_supply_spec(name="cex")
        data = spec.to_dict()
        assert data["kind"] == SUPPLY_SCHEDULE
        assert SupplySpec.from_dict(data) == spec

    def test_bad_schedule_points_rejected(self):
        with pytest.raises(CampaignError):
            SupplySpec(kind=SUPPLY_SCHEDULE, points=(("main", 1, 0),))


class TestByteDeterminism:
    def test_loaded_schedule_replays_identically(self, jit_counterexample):
        compiled, env, schedule = jit_counterexample
        loaded = Schedule.from_json(schedule.to_json())
        outcomes = []
        for engine in (ENGINE_FAST, ENGINE_REFERENCE):
            for _ in range(2):
                result = replay_schedule(
                    compiled, env, loaded, engine=engine,
                    stop_at_violation=False,
                )
                outcomes.append(
                    (
                        [
                            (v.pid, v.kind, v.uid, v.tau, tuple(v.missing))
                            for v in result.violations
                        ],
                        result.final_tau,
                        result.activations,
                        result.all_fired,
                    )
                )
        assert all(outcome == outcomes[0] for outcome in outcomes)
        assert outcomes[0][0]  # the violation really is there
