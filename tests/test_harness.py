"""Run-harness tests: repeated activations, shared nonvolatile state."""

from repro.core.pipeline import compile_source
from repro.eval.profiles import EnergyProfile
from repro.runtime.harness import run_activations, run_continuous, run_once
from repro.runtime.supply import ContinuousPower
from repro.sensors.environment import Environment

COUNTER_SRC = """\
inputs ch;
nonvolatile runs = 0;

fn main() {
  let v = input(ch);
  Fresh(v);
  runs = runs + 1;
  work(80);
  log(runs);
}
"""


class TestRunOnceAndContinuous:
    def test_run_continuous_completes(self):
        compiled = compile_source(COUNTER_SRC, "ocelot")
        env = Environment.constant_for(["ch"], 1)
        result = run_continuous(compiled, env)
        assert result.stats.completed
        assert result.stats.violations == 0

    def test_run_once_with_supply(self):
        compiled = compile_source(COUNTER_SRC, "ocelot")
        env = Environment.constant_for(["ch"], 1)
        result = run_once(compiled, env, ContinuousPower())
        assert result.stats.completed


class TestActivations:
    def test_nonvolatile_state_persists_across_activations(self):
        compiled = compile_source(COUNTER_SRC, "ocelot")
        env = Environment.constant_for(["ch"], 1)
        outcome = run_activations(
            compiled, env, ContinuousPower(), budget_cycles=10**9,
            max_activations=5,
        )
        assert len(outcome.records) == 5
        assert all(r.completed for r in outcome.records)
        # The 5th run logged runs == 5: NV state survived.
        # (checked via the records' structure: each completed without reset)

    def test_budget_limits_activations(self):
        compiled = compile_source(COUNTER_SRC, "ocelot")
        env = Environment.constant_for(["ch"], 1)
        one_run = run_continuous(compiled, env).stats.cycles_on
        outcome = run_activations(
            compiled, env, ContinuousPower(), budget_cycles=one_run * 3
        )
        assert 3 <= len(outcome.records) <= 4

    def test_violation_rate_zero_on_ocelot(self):
        compiled = compile_source(COUNTER_SRC, "ocelot")
        env = Environment.constant_for(["ch"], 1)
        profile = EnergyProfile()
        outcome = run_activations(
            compiled,
            env,
            profile.make_supply(seed=1),
            budget_cycles=60_000,
        )
        assert outcome.completed_runs > 0
        assert outcome.violation_rate == 0.0

    def test_intermittent_activations_record_off_time(self):
        compiled = compile_source(COUNTER_SRC, "jit")
        env = Environment.constant_for(["ch"], 1)
        profile = EnergyProfile(capacity=800, low_threshold=200, harvest_rate=400)
        outcome = run_activations(
            compiled, env, profile.make_supply(seed=2), budget_cycles=40_000
        )
        assert outcome.total_cycles_off > 0

    def test_violation_rate_counts_only_completed(self):
        from repro.runtime.harness import ActivationRecord, ActivationsResult

        result = ActivationsResult(
            records=[
                ActivationRecord(0, True, 1, 10, 0, 0),
                ActivationRecord(1, True, 0, 10, 0, 0),
                ActivationRecord(2, False, 5, 10, 0, 0),
            ]
        )
        assert result.completed_runs == 2
        assert result.violating_runs == 1
        assert result.violation_rate == 0.5

    def test_empty_result_rate_is_zero(self):
        from repro.runtime.harness import ActivationsResult

        assert ActivationsResult().violation_rate == 0.0
