"""Dominator / post-dominator / control-dependence tests.

Includes a naive set-based dominator computation as an oracle: the CHK
iterative algorithm must agree with it on every generated CFG.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.dominators import (
    DomTree,
    control_dependence,
    dominator_tree,
    postdominator_tree,
)
from repro.ir.lowering import LoweringOptions, lower_program
from repro.lang.parser import parse_program


def lower(source: str, unroll: bool = True):
    return lower_program(
        parse_program(source), options=LoweringOptions(unroll_loops=unroll)
    )


DIAMOND = """
fn main() {
  let x = 1;
  if x < 2 {
    alarm();
  } else {
    work(5);
  }
  log(x);
}
"""

LOOPY = """
inputs ch;
fn main() {
  repeat 3 {
    let x = input(ch);
    if x > 4 {
      alarm();
    }
  }
  log(1);
}
"""


def naive_dominators(succ: dict[str, list[str]], root: str) -> dict[str, set[str]]:
    """Textbook iterative set-intersection dominators (the oracle)."""
    nodes = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if node in nodes:
            continue
        nodes.add(node)
        stack.extend(succ.get(node, []))
    preds: dict[str, list[str]] = {n: [] for n in nodes}
    for node in nodes:
        for child in succ.get(node, []):
            preds[child].append(node)
    dom = {n: set(nodes) for n in nodes}
    dom[root] = {root}
    changed = True
    while changed:
        changed = False
        for node in nodes - {root}:
            incoming = [dom[p] for p in preds[node]]
            new = set.intersection(*incoming) | {node} if incoming else {node}
            if new != dom[node]:
                dom[node] = new
                changed = True
    return dom


def assert_tree_matches_naive(func) -> None:
    succ = {name: block.successors() for name, block in func.blocks.items()}
    tree = dominator_tree(func)
    oracle = naive_dominators(succ, func.entry)
    for node in oracle:
        assert set(tree.dominators_of(node)) == oracle[node], node


class TestDominators:
    def test_diamond(self):
        func = lower(DIAMOND).function("main")
        tree = dominator_tree(func)
        # The entry dominates everything.
        for name in func.blocks:
            assert tree.dominates(func.entry, name)
        assert_tree_matches_naive(func)

    def test_loop_cfg_matches_naive(self):
        func = lower(LOOPY, unroll=False).function("main")
        assert_tree_matches_naive(func)

    def test_branch_arms_do_not_dominate_join(self):
        func = lower(DIAMOND).function("main")
        tree = dominator_tree(func)
        joins = [n for n in func.blocks if n.startswith("join")]
        thens = [n for n in func.blocks if n.startswith("then")]
        assert joins and thens
        assert not tree.dominates(thens[0], joins[0])

    def test_lca_properties(self):
        func = lower(DIAMOND).function("main")
        tree = dominator_tree(func)
        names = list(func.blocks)
        for a in names:
            for b in names:
                lca = tree.lca(a, b)
                assert tree.dominates(lca, a)
                assert tree.dominates(lca, b)
                assert tree.lca(a, b) == tree.lca(b, a)
        for a in names:
            assert tree.lca(a, a) == a

    def test_common_ancestor_of_all_blocks_is_entry_or_dominator(self):
        func = lower(DIAMOND).function("main")
        tree = dominator_tree(func)
        common = tree.common_ancestor(list(func.blocks))
        for name in func.blocks:
            assert tree.dominates(common, name)


class TestPostDominators:
    def test_exit_postdominates_everything(self):
        func = lower(DIAMOND).function("main")
        tree = postdominator_tree(func)
        for name in func.blocks:
            assert tree.dominates(func.exit, name)

    def test_join_postdominates_arms(self):
        func = lower(DIAMOND).function("main")
        tree = postdominator_tree(func)
        joins = [n for n in func.blocks if n.startswith("join")]
        thens = [n for n in func.blocks if n.startswith("then")]
        assert tree.dominates(joins[0], thens[0])

    def test_loop_postdominators(self):
        func = lower(LOOPY, unroll=False).function("main")
        tree = postdominator_tree(func)
        for name in func.blocks:
            assert tree.dominates(func.exit, name)


class TestControlDependence:
    def test_then_block_depends_on_branch_block(self):
        func = lower(DIAMOND).function("main")
        deps = control_dependence(func)
        thens = [n for n in func.blocks if n.startswith("then")]
        elses = [n for n in func.blocks if n.startswith("else")]
        assert deps[thens[0]] == {func.entry}
        assert deps[elses[0]] == {func.entry}

    def test_join_is_not_control_dependent(self):
        func = lower(DIAMOND).function("main")
        deps = control_dependence(func)
        joins = [n for n in func.blocks if n.startswith("join")]
        assert deps[joins[0]] == set()

    def test_nested_if_dependence(self):
        src = """
        fn main() {
          let x = 1;
          if x < 5 {
            if x < 2 {
              alarm();
            }
          }
        }
        """
        func = lower(src).function("main")
        deps = control_dependence(func)
        inner_thens = sorted(n for n in func.blocks if n.startswith("then"))
        # The innermost then-block is control dependent on the inner branch,
        # which itself is control dependent on the entry.
        innermost = inner_thens[-1]
        assert deps[innermost]
        controller = next(iter(deps[innermost]))
        assert deps[controller] or controller == func.entry


class TestHypothesisAgainstNaive:
    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_chk_matches_naive_on_random_programs(self, data):
        from tests.strategies import program_sources

        source = data.draw(program_sources())
        module = lower(source)
        for func in module.functions.values():
            assert_tree_matches_naive(func)


class TestDomTreeValidation:
    def test_bad_idom_map_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            DomTree(root="a", idom={"a": "a", "b": "c", "c": "b"})
