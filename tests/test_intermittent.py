"""Intermittent execution tests: the Appendix H semantics under failures."""

import pytest

from repro.core.pipeline import compile_source
from repro.energy.capacitor import Capacitor
from repro.energy.harvester import ConstantHarvester
from repro.ir import instructions as ir
from repro.runtime.executor import ExecError, Machine, MachineConfig
from repro.runtime.supply import (
    EnergyDrivenSupply,
    FailurePoint,
    ScheduledFailures,
)
from repro.sensors.environment import Environment, steps


def find_uid(module, predicate):
    for instr in module.all_instrs():
        if predicate(instr):
            return instr.uid
    raise AssertionError("no instruction matched")


class TestJitCheckpointing:
    SRC = "inputs ch;\nfn main() { let x = input(ch); work(50); log(x); }"

    def test_jit_resumes_after_failure(self):
        compiled = compile_source(self.SRC, "jit")
        env = Environment({"ch": steps([1, 100], 1000)})
        # Fail at the work instruction: outside the uart guard region, so
        # the ISR takes a JIT checkpoint (inside a region it would not).
        work_uid = find_uid(
            compiled.module, lambda i: isinstance(i, ir.WorkInstr)
        )
        supply = ScheduledFailures([FailurePoint(work_uid)], off_cycles=5000)
        machine = Machine(compiled.module, env, supply, plan=compiled.detector_plan())
        result = machine.run()
        assert result.stats.completed
        assert result.stats.reboots == 1
        assert result.stats.jit_checkpoints == 1
        # JIT never re-collects: the logged value is the pre-failure input.
        (inp,) = result.trace.inputs
        (out,) = result.trace.outputs
        assert out.values == (inp.value,)

    def test_jit_checkpoint_preserves_locals(self):
        src = "fn main() { let a = 11; let b = 22; work(5); log(a + b); }"
        compiled = compile_source(src, "jit")
        env = Environment.constant_for([], 0)
        out_uid = find_uid(
            compiled.module, lambda i: isinstance(i, ir.OutputInstr)
        )
        supply = ScheduledFailures([FailurePoint(out_uid)], off_cycles=100)
        machine = Machine(compiled.module, env, supply)
        result = machine.run()
        assert result.trace.outputs[0].values == (33,)

    def test_failure_before_any_checkpoint_restarts_program(self):
        src = "inputs ch;\nfn main() { let x = input(ch); log(x); }"
        compiled = compile_source(src, "jit")
        env = Environment.constant_for(["ch"], 3)
        input_uid = find_uid(
            compiled.module, lambda i: isinstance(i, ir.InputInstr)
        )
        supply = ScheduledFailures([FailurePoint(input_uid)], off_cycles=100)
        machine = Machine(compiled.module, env, supply)
        result = machine.run()
        assert result.stats.completed
        assert len(result.trace.inputs) == 1  # restarted, then sampled once


class TestAtomicRegionSemantics:
    SRC = (
        "inputs a, b;\nnonvolatile total = 0;\n"
        "fn main() {\n"
        "  let consistent(1) x = input(a);\n"
        "  let consistent(1) y = input(b);\n"
        "  total = total + x + y;\n"
        "  log(total);\n"
        "}"
    )

    def _input_uids(self, compiled):
        return [
            i.uid
            for i in compiled.module.all_instrs()
            if isinstance(i, ir.InputInstr)
        ]

    def test_region_restart_recollects_inputs(self):
        compiled = compile_source(self.SRC, "ocelot")
        env = Environment({"a": steps([1, 50], 1000), "b": steps([2, 60], 1000)})
        second_input = sorted(self._input_uids(compiled), key=str)[1]
        supply = ScheduledFailures([FailurePoint(second_input)], off_cycles=5000)
        machine = Machine(compiled.module, env, supply, plan=compiled.detector_plan())
        result = machine.run()
        assert result.stats.completed
        assert result.stats.region_restarts == 1
        # Both inputs were collected twice: aborted attempt + committed one.
        a_samples = [i for i in result.trace.inputs if i.channel == "a"]
        assert len(a_samples) == 2

    def test_undo_log_restores_nonvolatile(self):
        src = (
            "inputs ch;\nnonvolatile acc = 0;\n"
            "fn main() { atomic { let v = input(ch); acc = acc + v; work(40); } "
            "log(acc); }"
        )
        compiled = compile_source(src, "ocelot")
        env = Environment.constant_for(["ch"], 5)
        work_uid = find_uid(
            compiled.module, lambda i: isinstance(i, ir.WorkInstr)
        )
        supply = ScheduledFailures([FailurePoint(work_uid)], off_cycles=100)
        machine = Machine(compiled.module, env, supply, plan=compiled.detector_plan())
        result = machine.run()
        assert result.stats.completed
        # acc was incremented, rolled back, incremented again: exactly once.
        assert machine.nv.globals["acc"].value == 5
        assert result.trace.outputs[-1].values == (5,)

    def test_region_restart_counts(self):
        compiled = compile_source(self.SRC, "ocelot")
        env = Environment.constant_for(["a", "b"], 1)
        second_input = sorted(self._input_uids(compiled), key=str)[1]
        supply = ScheduledFailures(
            [FailurePoint(second_input, occurrence=1)], off_cycles=50
        )
        machine = Machine(compiled.module, env, supply, plan=compiled.detector_plan())
        result = machine.run()
        assert result.stats.region_restarts == 1

    def test_stuck_region_raises(self):
        src = "fn main() { atomic { work(500); } }"
        compiled = compile_source(src, "ocelot")
        env = Environment.constant_for([], 0)
        # Usable window smaller than the region: can never complete.
        supply = EnergyDrivenSupply(
            Capacitor(400, 100), ConstantHarvester(1000)
        )
        machine = Machine(
            compiled.module,
            env,
            supply,
            config=MachineConfig(max_region_restarts=10),
        )
        with pytest.raises(ExecError, match="cannot complete"):
            machine.run()


class TestEnergyDrivenExecution:
    def test_failures_occur_and_program_completes(self):
        src = "fn main() { repeat 8 { work(100); } log(1); }"
        compiled = compile_source(src, "jit")
        env = Environment.constant_for([], 0)
        supply = EnergyDrivenSupply(Capacitor(500, 100), ConstantHarvester(500))
        machine = Machine(compiled.module, env, supply)
        result = machine.run()
        assert result.stats.completed
        assert result.stats.reboots >= 1
        assert result.stats.cycles_off > 0

    def test_off_time_advances_tau(self):
        src = "fn main() { work(300); work(300); log(1); }"
        compiled = compile_source(src, "jit")
        env = Environment.constant_for([], 0)
        supply = EnergyDrivenSupply(Capacitor(500, 100), ConstantHarvester(100))
        machine = Machine(compiled.module, env, supply)
        result = machine.run()
        assert machine.tau >= result.stats.cycles_on + result.stats.cycles_off

    def test_reboot_observation_records_off_time(self):
        src = "fn main() { work(900); log(1); }"
        compiled = compile_source(src, "jit")
        env = Environment.constant_for([], 0)
        supply = EnergyDrivenSupply(Capacitor(600, 100), ConstantHarvester(250))
        machine = Machine(compiled.module, env, supply)
        result = machine.run()
        reboots = result.trace.reboots
        assert reboots and all(r.off_cycles > 0 for r in reboots)


class TestDetectorUnderFailures:
    def test_jit_violates_freshness(self, weather_jit, weather_env):
        plan = weather_jit.detector_plan()
        branch_uid = find_uid(
            weather_jit.module,
            lambda i: isinstance(i, ir.Branch) and i.uid.func == "main",
        )
        supply = ScheduledFailures([FailurePoint(branch_uid)], off_cycles=8000)
        machine = Machine(weather_jit.module, weather_env, supply, plan=plan)
        result = machine.run()
        assert result.stats.violations >= 1
        kinds = {v.kind for v in result.trace.violations}
        assert "fresh" in kinds

    def test_ocelot_never_violates(self, weather_ocelot, weather_env):
        plan = weather_ocelot.detector_plan()
        sites = sorted({c.op for c in plan.checks}, key=str)
        for site in sites:
            supply = ScheduledFailures([FailurePoint(site)], off_cycles=8000)
            machine = Machine(
                weather_ocelot.module, weather_env, supply, plan=plan
            )
            result = machine.run()
            assert result.stats.completed
            assert result.stats.violations == 0, site

    def test_jit_violates_consistency_between_inputs(
        self, weather_jit, weather_env
    ):
        inputs = [
            i
            for i in weather_jit.module.all_instrs()
            if isinstance(i, ir.InputInstr) and i.channel == "hum"
        ]
        supply = ScheduledFailures(
            [FailurePoint(inputs[0].uid)], off_cycles=8000
        )
        machine = Machine(
            weather_jit.module, weather_env, supply,
            plan=weather_jit.detector_plan(),
        )
        result = machine.run()
        kinds = {v.kind for v in result.trace.violations}
        assert "consistent" in kinds
