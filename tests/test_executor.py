"""Executor tests: evaluation, calls, references, arrays, observations."""

import pytest

from repro.core.pipeline import PipelineOptions, compile_source
from repro.runtime import observations as obs
from repro.runtime.executor import ExecError, Machine
from repro.runtime.supply import ContinuousPower
from repro.sensors.environment import Environment, ramp


def run(source: str, env: Environment | None = None, config: str = "ocelot"):
    compiled = compile_source(source, config)
    env = env or Environment.constant_for(compiled.module.channels, 5)
    machine = Machine(compiled.module, env, ContinuousPower(), plan=compiled.detector_plan())
    result = machine.run()
    assert result.stats.completed
    return machine, result


class TestArithmetic:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("1 + 2 * 3", 7),
            ("(1 + 2) * 3", 9),
            ("10 / 3", 3),
            ("-10 / 3", -3),  # C-style truncation toward zero
            ("10 % 3", 1),
            ("-10 % 3", -1),
            ("7 / 0", 0),  # MCU guard: division by zero yields 0
            ("7 % 0", 0),
            ("3 < 4", 1),
            ("4 <= 4", 1),
            ("5 == 5", 1),
            ("5 != 5", 0),
            ("1 && 0", 0),
            ("0 || 2", 1),
            ("!0", 1),
            ("-(3 + 4)", -7),
            ("min(3, 9)", 3),
            ("max(3, 9)", 9),
            ("abs(0 - 8)", 8),
        ],
    )
    def test_expression(self, expr, expected):
        machine, result = run(f"fn main() {{ let x = {expr}; log(x); }}")
        assert result.trace.outputs[0].values == (expected,)


class TestCallsAndReturns:
    def test_return_value_flows_to_caller(self):
        machine, result = run(
            "fn add(a, b) { return a + b; }\n"
            "fn main() { let x = add(3, 4); log(x); }"
        )
        assert result.trace.outputs[0].values == (7,)

    def test_void_function(self):
        machine, result = run(
            "fn noisy() { alarm(); }\nfn main() { noisy(); log(1); }"
        )
        ops = [o.op for o in result.trace.outputs]
        assert ops == ["alarm", "log"]

    def test_missing_return_defaults_to_zero(self):
        machine, result = run(
            "fn f(a) { if a > 10 { return 1; } }\n"
            "fn main() { let x = f(1); log(x); }"
        )
        assert result.trace.outputs[0].values == (0,)

    def test_nested_calls(self):
        machine, result = run(
            "fn inc(v) { return v + 1; }\n"
            "fn twice(v) { let a = inc(v); let b = inc(a); return b; }\n"
            "fn main() { let x = twice(5); log(x); }"
        )
        assert result.trace.outputs[0].values == (7,)


class TestReferences:
    def test_store_through_reference(self):
        machine, result = run(
            "fn put(&out, v) { *out = v * 10; }\n"
            "fn main() { let x = 1; put(&x, 7); log(x); }"
        )
        assert result.trace.outputs[0].values == (70,)

    def test_reference_forwarding(self):
        machine, result = run(
            "fn inner(&p) { *p = 42; }\n"
            "fn outer(&q) { inner(&q); }\n"
            "fn main() { let x = 0; outer(&x); log(x); }"
        )
        assert result.trace.outputs[0].values == (42,)

    def test_reading_through_reference(self):
        machine, result = run(
            "fn bump(&p) { *p = p + 1; }\n"
            "fn main() { let x = 9; bump(&x); log(x); }"
        )
        assert result.trace.outputs[0].values == (10,)


class TestNonvolatileMemory:
    def test_global_read_write(self):
        machine, result = run(
            "nonvolatile g = 5;\nfn main() { g = g + 1; log(g); }"
        )
        assert result.trace.outputs[0].values == (6,)
        assert machine.nv.globals["g"].value == 6

    def test_array_read_write(self):
        machine, result = run(
            "nonvolatile a[3] = [10, 20, 30];\n"
            "fn main() { a[1] = a[1] + 1; log(a[1]); }"
        )
        assert result.trace.outputs[0].values == (21,)

    def test_out_of_bounds_raises(self):
        compiled = compile_source(
            "nonvolatile a[2];\nfn main() { a[5] = 1; }", "jit",
            options=PipelineOptions(strict=False),
        )
        env = Environment.constant_for([], 0)
        machine = Machine(compiled.module, env, ContinuousPower())
        with pytest.raises(ExecError, match="out of bounds"):
            machine.run()


class TestInputsAndTaint:
    def test_input_reads_environment_at_tau(self):
        env = Environment({"ch": ramp(start=0, slope_per_kilocycle=1000)})
        machine, result = run(
            "inputs ch;\nfn main() { work(500); let x = input(ch); log(x); }",
            env=env,
        )
        (out,) = result.trace.outputs
        # work(500) advanced tau past 500 cycles, so the ramp reads >= 0.
        assert out.values[0] >= 0
        (inp,) = result.trace.inputs
        assert inp.value == out.values[0]

    def test_taint_propagates_to_annotation_observation(self):
        machine, result = run(
            "inputs ch;\nfn main() { let x = input(ch); let y = x + 1; Fresh(y); }"
        )
        (decl,) = result.trace.of_type(obs.FreshDeclObs)
        assert len(decl.inputs) == 1
        event = next(iter(decl.inputs))
        assert event.channel == "ch"

    def test_consistent_observation_carries_set_id(self):
        machine, result = run(
            "inputs a, b;\n"
            "fn main() { let consistent(7) x = input(a); "
            "let consistent(7) y = input(b); log(x, y); }"
        )
        decls = result.trace.of_type(obs.ConsistentDeclObs)
        assert [d.set_id for d in decls] == [7, 7]


class TestAtomicRegions:
    def test_region_events_bracket(self):
        machine, result = run(
            "inputs a, b;\n"
            "fn main() { let consistent(1) x = input(a); "
            "let consistent(1) y = input(b); log(x, y); }"
        )
        enters = result.trace.of_type(obs.RegionEnterObs)
        exits = result.trace.of_type(obs.RegionExitObs)
        assert len(enters) == len(exits) >= 1

    def test_nested_regions_flatten(self):
        machine, result = run(
            "fn main() { atomic { atomic { skip; } skip; } }",
        )
        enters = result.trace.of_type(obs.RegionEnterObs)
        exits = result.trace.of_type(obs.RegionExitObs)
        assert len(enters) == 1 and len(exits) == 1

    def test_stray_end_is_noop(self):
        # Overlap: end of an inner region after the outer committed is
        # impossible from lowering, but the runtime must tolerate marker
        # patterns produced by overlapping inferred regions.
        machine, result = run(
            "inputs a;\n"
            "fn main() { let x = input(a); Fresh(x); if x > 1 { alarm(); } }"
        )
        assert result.stats.completed

    def test_region_stats_counted(self):
        machine, result = run("fn main() { atomic { skip; } atomic { skip; } }")
        assert result.stats.region_entries == 2
        assert result.stats.region_commits == 2


class TestReturnValue:
    def test_main_return_value_surfaces(self):
        machine, result = run("fn main() { return 99; }")
        assert result.ret == 99

    def test_main_without_return(self):
        machine, result = run("fn main() { skip; }")
        assert result.ret is None


class TestCycleAccounting:
    def test_work_costs_cycles(self):
        machine_a, result_a = run("fn main() { work(1000); }")
        machine_b, result_b = run("fn main() { work(10); }")
        assert result_a.stats.cycles_on > result_b.stats.cycles_on + 900

    def test_tau_advances_monotonically(self):
        machine, result = run("fn main() { work(5); log(1); work(5); log(2); }")
        taus = [o.tau for o in result.trace.outputs]
        assert taus == sorted(taus)
