"""Check-optimizer parity: optimized builds are bit-identical, but cheaper.

The optimizer's contract (following the formal-foundation discipline: a
transformation is sound iff observable traces are unchanged) is enforced
here bit-exactly: for every app and for hypothesis-generated programs
with seeded check sites, an ``*-opt`` build must produce byte-identical
observation traces, :class:`RunStats`, logical clocks, return values,
and nonvolatile state as its baseline configuration -- across both
execution engines, under continuous, energy-driven, and
scheduled-failure power -- while executing **at most** as many detector
queries, and strictly fewer wherever the baseline checks at all.  The
structural side (every policy-required check accounted for, consumed
queries at least as strong, the checker still passing) is verified via
:func:`repro.ir.opt.verify_plan`.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.provenance import Chain
from repro.apps import BENCHMARKS
from repro.core.cache import GLOBAL_CACHE
from repro.core.pipeline import compile_source
from repro.eval.profiles import STANDARD_PROFILE, EnergyProfile
from repro.ir.opt import OptimizedPlan, verify_plan
from repro.runtime.detector import build_detector_plan
from repro.runtime.engine import ENGINE_FAST, ENGINE_REFERENCE, create_machine
from repro.runtime.supply import ContinuousPower, FailurePoint, ScheduledFailures
from repro.sensors.environment import Environment, random_walk, steps
from tests.strategies import program_sources

#: (baseline config, optimized config) pairs under parity contract.
PAIRS = (
    ("ocelot", "ocelot-opt"),
    ("ocelot", "ocelot-nohoist"),
    ("ocelot", "ocelot-nocoalesce"),
    ("jit", "jit-opt"),
)

_PROFILE = EnergyProfile(
    capacity=2500,
    low_threshold=500,
    boot_fraction=(0.7, 1.0),
    harvest_rate=250,
    harvest_spread=3.0,
)


def _gen_env(seed: int) -> Environment:
    return Environment(
        {
            "alpha": steps([3, 11, 7], 900),
            "beta": random_walk(20, 5, seed=seed, interval=300),
            "gamma": steps([-4, 18], 1500),
        }
    )


def _outcome(engine, compiled, make_env, make_supply, costs=None):
    kwargs = {"costs": costs} if costs is not None else {}
    machine = create_machine(
        engine, compiled, make_env(), make_supply(), **kwargs
    )
    result = machine.run()
    return {
        "trace": tuple(result.trace.events),
        "stats": result.stats,
        "ret": result.ret,
        "tau": machine.tau,
        "nv": machine.nv.snapshot_values(),
        "queries": machine.detector_queries,
    }


def _assert_pair_parity(base, opt, context="", check_queries=True):
    for key in ("trace", "stats", "ret", "tau", "nv"):
        assert base[key] == opt[key], f"{context}: {key} diverged"
    if check_queries:
        # The <= guarantee is per failure-free path: a reboot between a
        # hoisted query and its consumers invalidates the cache, and the
        # consumer's fallback scan can exceed the baseline count for that
        # interrupted pass.  Callers disable the assertion for scenarios
        # that inject power failures.
        assert opt["queries"] <= base["queries"], (
            f"{context}: optimized build executed more checks "
            f"({opt['queries']} > {base['queries']})"
        )


class TestBenchmarkParity:
    """All shipped apps x optimizer configs x supply kinds x engines."""

    def test_apps_bit_identical_with_fewer_checks(self):
        for app, meta in BENCHMARKS.items():
            costs = meta.cost_model()
            for base_cfg, opt_cfg in PAIRS:
                base = GLOBAL_CACHE.get_or_compile(meta.source, base_cfg)
                opt = GLOBAL_CACHE.get_or_compile(meta.source, opt_cfg)
                for supply_kind in ("continuous", "harvest"):
                    if supply_kind == "continuous":
                        def make_supply():
                            return ContinuousPower()
                    else:
                        proto = STANDARD_PROFILE.make_supply(seed=11)

                        def make_supply(proto=proto):
                            return proto.spawn(23)

                    for engine in (ENGINE_REFERENCE, ENGINE_FAST):
                        outcomes = [
                            _outcome(
                                engine,
                                compiled,
                                lambda meta=meta: meta.env_factory(5),
                                make_supply,
                                costs=costs,
                            )
                            for compiled in (base, opt)
                        ]
                        _assert_pair_parity(
                            *outcomes,
                            context=f"{app}/{opt_cfg}/{supply_kind}/{engine}",
                            check_queries=supply_kind == "continuous",
                        )

    def test_region_enforced_apps_drop_all_queries(self):
        """Under full Ocelot the regions subsume every runtime check --
        the paper's central claim, realized as zero detector queries."""
        meta = BENCHMARKS["tire"]
        base = GLOBAL_CACHE.get_or_compile(meta.source, "ocelot")
        opt = GLOBAL_CACHE.get_or_compile(meta.source, "ocelot-opt")
        proto = STANDARD_PROFILE.make_supply(seed=5)
        outcomes = [
            _outcome(
                ENGINE_FAST,
                compiled,
                lambda: meta.env_factory(3),
                lambda: proto.spawn(31),
                costs=meta.cost_model(),
            )
            for compiled in (base, opt)
        ]
        _assert_pair_parity(*outcomes, context="tire/ocelot-opt")
        assert outcomes[0]["queries"] > 0
        assert outcomes[1]["queries"] == 0

    def test_injection_at_every_baseline_check_site(self):
        """Power failures right before each check site: the fallback and
        cache-invalidation paths must stay bit-exact."""
        meta = BENCHMARKS["tire"]
        for base_cfg, opt_cfg in (("ocelot", "ocelot-opt"), ("jit", "jit-opt")):
            base = GLOBAL_CACHE.get_or_compile(meta.source, base_cfg)
            opt = GLOBAL_CACHE.get_or_compile(meta.source, opt_cfg)
            costs = meta.cost_model()
            sites = sorted(base.detector_plan().checks)
            assert sites
            for site in sites:
                for engine in (ENGINE_REFERENCE, ENGINE_FAST):
                    outcomes = [
                        _outcome(
                            engine,
                            compiled,
                            lambda: meta.env_factory(0),
                            lambda site=site: ScheduledFailures(
                                [FailurePoint(chain=site)], off_cycles=25_000
                            ),
                            costs=costs,
                        )
                        for compiled in (base, opt)
                    ]
                    _assert_pair_parity(
                        *outcomes,
                        context=f"{opt_cfg} inject at {site}",
                        check_queries=False,
                    )


class TestStaticPlan:
    """Structural invariants of the optimized plans."""

    def test_plans_verify_and_never_grow(self):
        for app, meta in BENCHMARKS.items():
            for _base_cfg, opt_cfg in PAIRS:
                opt = GLOBAL_CACHE.get_or_compile(meta.source, opt_cfg)
                plan = opt.detector_plan()
                assert isinstance(plan, OptimizedPlan), (app, opt_cfg)
                baseline = build_detector_plan(opt.policies)
                verify_plan(baseline, plan)
                assert plan.static_queries <= baseline.total_checks
                assert plan.bit_chains == baseline.bit_chains

    def test_checker_verdict_matches_baseline(self):
        for app, meta in BENCHMARKS.items():
            for base_cfg, opt_cfg in PAIRS:
                base = GLOBAL_CACHE.get_or_compile(meta.source, base_cfg)
                opt = GLOBAL_CACHE.get_or_compile(meta.source, opt_cfg)
                assert base.check.ok == opt.check.ok, (app, opt_cfg)

    def test_fingerprints_and_cache_keys_differ(self):
        from repro.core.cache import CacheKey
        from repro.core.passes import get_config

        src = BENCHMARKS["tire"].source
        assert (
            get_config("ocelot").fingerprint()
            != get_config("ocelot-opt").fingerprint()
        )
        assert CacheKey.make(src, "ocelot") != CacheKey.make(src, "ocelot-opt")
        assert CacheKey.make(src, "ocelot-opt") != CacheKey.make(
            src, "ocelot-nohoist"
        )

    def test_emit_artifacts_render(self):
        from repro.core.passes import emit_artifact

        opt = GLOBAL_CACHE.get_or_compile(BENCHMARKS["tire"].source, "ocelot-opt")
        assert "static queries" in emit_artifact(opt, "opt")
        assert "availability" in emit_artifact(opt, "dataflow")
        base = GLOBAL_CACHE.get_or_compile(BENCHMARKS["tire"].source, "ocelot")
        assert "no optimized plan" in emit_artifact(base, "opt")
        assert "no dataflow summary" in emit_artifact(base, "dataflow")


HOIST_SRC = """\
inputs alpha, beta;

fn main() {
  let c = input(beta);
  let x = input(alpha);
  Fresh(x);
  if c > 0 {
    log(x);
  } else {
    log(x + 1);
  }
}
"""

COALESCE_SRC = """\
inputs alpha, beta;

fn main() {
  let x = input(alpha);
  Fresh(x);
  let y = input(beta);
  Fresh(y);
  log(x + y);
}
"""

SUBSUME_SRC = """\
inputs alpha;

fn main() {
  let x = input(alpha);
  Fresh(x);
  if x > 2 {
    log(x);
  } else {
    log(0);
  }
  log(x);
}
"""

#: A subsumption anchor (the `h = x` site feeding the nested `k = x`
#: consume) that the hoist pass would also like to convert: converting
#: it must not orphan its consumers' query id.
ANCHOR_VS_HOIST_SRC = """\
inputs alpha, beta;
nonvolatile h = 0;
nonvolatile k = 0;
nonvolatile m = 0;

fn main() {
  let c = input(beta);
  let x = input(alpha);
  Fresh(x);
  if c > 0 {
    h = x;
    if c > 1 {
      k = x;
    }
  } else {
    m = x;
  }
}
"""



def _crafted_env() -> Environment:
    return Environment(
        {"alpha": steps([1, 9], 700), "beta": steps([-3, 4], 500)}
    )


class TestCraftedShapes:
    """Hand-built programs that pin each optimization down individually."""

    def _parity_under_failures(self, src: str, base_cfg="jit", opt_cfg="jit-opt"):
        base = compile_source(src, base_cfg)
        opt = compile_source(src, opt_cfg)
        proto = _PROFILE.make_supply(seed=7)
        scenarios = [lambda: ContinuousPower()] + [
            lambda seed=seed: proto.spawn(seed) for seed in range(6)
        ]
        for site in sorted(base.detector_plan().checks):
            scenarios.append(
                lambda site=site: ScheduledFailures(
                    [FailurePoint(chain=site)], off_cycles=9_000
                )
            )
        for index, make_supply in enumerate(scenarios):
            for engine in (ENGINE_REFERENCE, ENGINE_FAST):
                outcomes = [
                    _outcome(engine, compiled, _crafted_env, make_supply)
                    for compiled in (base, opt)
                ]
                _assert_pair_parity(
                    *outcomes,
                    context=f"{opt_cfg}/{engine}",
                    check_queries=index == 0,  # continuous power only
                )
        return base, opt

    def test_hoisting_synthesizes_a_dominator_query(self):
        base, opt = self._parity_under_failures(HOIST_SRC)
        plan = opt.detector_plan()
        hoists = [
            hoist
            for actions in plan.actions.values()
            for hoist in actions.hoists
        ]
        assert hoists, "both-arm uses should hoist to the branch dominator"
        # Without hoisting the queries stay at the arms.
        nohoist = compile_source(
            HOIST_SRC, "ocelot-nohoist"
        )  # region-enforced: elided instead
        assert nohoist.detector_plan().static_queries <= plan.static_queries

    def test_coalescing_fuses_same_site_checks(self):
        base, opt = self._parity_under_failures(COALESCE_SRC)
        plan = opt.detector_plan()
        fused = [a for a in plan.actions.values() if a.fused is not None]
        assert fused, "two fresh checks at one use site should fuse"
        assert plan.static_queries < build_detector_plan(opt.policies).total_checks

    def test_subsumption_consumes_dominating_query(self):
        from repro.runtime.detector import OP_CONSUME

        base, opt = self._parity_under_failures(SUBSUME_SRC)
        plan = opt.detector_plan()
        consumes = [
            op
            for actions in plan.actions.values()
            for op in actions.ops
            if op.mode == OP_CONSUME
        ]
        assert consumes, "uses dominated by the branch check should consume"

    def test_hoist_never_orphans_subsumption_anchors(self):
        """A subsumption anchor the hoist pass would also like to convert
        must stay behind as a direct query: every consumed query id needs
        a producer (regression: hoisting used to overwrite anchor hids,
        leaving their consumers dangling and failing plan verification)."""
        from repro.runtime.detector import OP_CONSUME, OP_FULL

        _base, opt = self._parity_under_failures(ANCHOR_VS_HOIST_SRC)
        plan = opt.detector_plan()
        producers = {
            op.hid
            for actions in plan.actions.values()
            for op in actions.ops
            if op.mode == OP_FULL and op.hid >= 0
        }
        producers |= {
            hoist.hid
            for actions in plan.actions.values()
            for hoist in actions.hoists
        }
        consumers = {
            op.hid
            for actions in plan.actions.values()
            for op in actions.ops
            if op.mode == OP_CONSUME
        }
        assert consumers, "the nested use should consume a dominating query"
        assert consumers <= producers

    def test_path_clear_sees_cycle_tail_after_site(self):
        """An input after the site in its own block counts as a kill when
        the block sits on a cycle avoiding the anchor (regression: only
        the prefix before the site was scanned)."""
        from repro.ir import instructions as ir
        from repro.ir.module import BasicBlock, IRFunction
        from repro.ir.opt.passes import _Scope
        from repro.lang import ast as lang_ast

        func = IRFunction(name="f", params=[], entry="A", exit="X")
        blocks = {name: BasicBlock(name=name) for name in ("A", "H", "B", "X")}
        func.blocks = blocks
        anchor = func.stamp(ir.SkipInstr())
        site = func.stamp(ir.SkipInstr())
        kill = func.stamp(ir.InputInstr(dest="v", channel="alpha"))
        blocks["A"].instrs = [anchor]
        blocks["A"].terminator = func.stamp(ir.Jump(target="H"))
        blocks["H"].terminator = func.stamp(
            ir.Branch(
                cond=lang_ast.IntLit(value=1),
                true_target="B",
                false_target="X",
            )
        )
        blocks["B"].instrs = [site, kill]  # the kill sits *after* the site
        blocks["B"].terminator = func.stamp(ir.Jump(target="H"))
        blocks["X"].terminator = func.stamp(ir.RetInstr(expr=None))

        scope = _Scope.of((), func)
        required = frozenset({Chain.of((), kill.uid)})
        a_pos = scope.positions[anchor.uid]
        b_pos = scope.positions[site.uid]
        assert scope.executes_before(a_pos, b_pos)
        # B -> H -> B re-executes the input between consecutive site
        # visits without re-passing the anchor in A.
        assert not scope.path_clear(a_pos, b_pos, required)
        # The prefix before the site stays clear when there is no cycle.
        blocks["H"].terminator = func.stamp(
            ir.Branch(
                cond=lang_ast.IntLit(value=1),
                true_target="B",
                false_target="X",
            )
        )
        blocks["B"].terminator = func.stamp(ir.Jump(target="X"))
        acyclic = _Scope.of((), func)
        assert acyclic.path_clear(
            acyclic.positions[anchor.uid],
            acyclic.positions[site.uid],
            required,
        )


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    source=program_sources(min_annotations=1),
    pair=st.sampled_from(PAIRS),
    env_seed=st.integers(0, 50),
)
def test_random_programs_parity_continuous(source, pair, env_seed):
    base_cfg, opt_cfg = pair
    base = compile_source(source, base_cfg)
    opt = compile_source(source, opt_cfg)
    for engine in (ENGINE_REFERENCE, ENGINE_FAST):
        outcomes = [
            _outcome(engine, c, lambda: _gen_env(env_seed), ContinuousPower)
            for c in (base, opt)
        ]
        _assert_pair_parity(*outcomes, context=f"{opt_cfg}/{engine}\n{source}")


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    source=program_sources(min_annotations=1),
    pair=st.sampled_from(PAIRS),
    env_seed=st.integers(0, 50),
    supply_seed=st.integers(0, 1000),
)
def test_random_programs_parity_energy_driven(source, pair, env_seed, supply_seed):
    base_cfg, opt_cfg = pair
    base = compile_source(source, base_cfg)
    opt = compile_source(source, opt_cfg)
    proto = _PROFILE.make_supply(seed=1)
    outcomes = [
        _outcome(
            ENGINE_FAST,
            c,
            lambda: _gen_env(env_seed),
            lambda: proto.spawn(supply_seed),
        )
        for c in (base, opt)
    ]
    _assert_pair_parity(
        *outcomes, context=f"{opt_cfg}\n{source}", check_queries=False
    )


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    source=program_sources(min_annotations=1),
    pair=st.sampled_from(PAIRS),
    env_seed=st.integers(0, 50),
    occurrence=st.integers(1, 3),
    data=st.data(),
)
def test_random_programs_parity_scheduled_failures(
    source, pair, env_seed, occurrence, data
):
    """Inject a failure before a random baseline check site, both builds."""
    base_cfg, opt_cfg = pair
    base = compile_source(source, base_cfg)
    opt = compile_source(source, opt_cfg)
    sites = sorted(base.detector_plan().checks)
    if not sites:
        return
    site = data.draw(st.sampled_from(sites))
    for engine in (ENGINE_REFERENCE, ENGINE_FAST):
        outcomes = [
            _outcome(
                engine,
                c,
                lambda: _gen_env(env_seed),
                lambda: ScheduledFailures(
                    [FailurePoint(chain=site, occurrence=occurrence)],
                    off_cycles=8_000,
                ),
            )
            for c in (base, opt)
        ]
        _assert_pair_parity(
            *outcomes,
            context=f"{opt_cfg} fail at {site}\n{source}",
            check_queries=False,
        )


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(source=program_sources(min_annotations=1), pair=st.sampled_from(PAIRS))
def test_random_programs_static_invariants(source, pair):
    """Optimized plans verify structurally and never add queries."""
    _base_cfg, opt_cfg = pair
    opt = compile_source(source, opt_cfg)
    plan = opt.detector_plan()
    assert isinstance(plan, OptimizedPlan)
    baseline = build_detector_plan(opt.policies)
    verify_plan(baseline, plan)
    assert plan.static_queries <= baseline.total_checks
