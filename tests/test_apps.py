"""Benchmark application tests: every app compiles, runs, and enforces."""

import pytest

from repro.apps import BENCHMARK_NAMES, BENCHMARKS
from repro.core.pipeline import CONFIGS, compile_source
from repro.runtime.harness import run_activations, run_continuous
from repro.runtime.supply import ContinuousPower, FailurePoint, ScheduledFailures
from repro.runtime.harness import run_once


@pytest.fixture(scope="module")
def builds():
    return {
        name: {cfg: compile_source(meta.source, cfg) for cfg in CONFIGS}
        for name, meta in BENCHMARKS.items()
    }


class TestRegistry:
    def test_six_benchmarks(self):
        assert len(BENCHMARK_NAMES) == 6
        assert set(BENCHMARK_NAMES) == {
            "activity", "cem", "greenhouse", "photo", "send_photo", "tire",
        }

    def test_get_benchmark_unknown(self):
        from repro.apps import get_benchmark

        with pytest.raises(KeyError):
            get_benchmark("nope")

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_metadata_shape(self, name):
        meta = BENCHMARKS[name]
        assert meta.loc > 10
        assert meta.paper_loc > 0
        assert meta.annotation_lines >= 1
        assert set(meta.paper_effort) == {"ocelot", "tics", "samoyed"}

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_environment_covers_channels(self, name):
        meta = BENCHMARKS[name]
        compiled = compile_source(meta.source, "jit")
        env = meta.env_factory(0)
        for channel in compiled.module.channels:
            env.read(channel, 0)  # must not raise


class TestCompilation:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_all_configs_compile(self, builds, name):
        for config in CONFIGS:
            assert builds[name][config].module is not None

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_ocelot_and_atomics_pass_checks(self, builds, name):
        assert builds[name]["ocelot"].check.ok
        assert builds[name]["atomics"].check.ok

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_jit_fails_checks(self, builds, name):
        assert not builds[name]["jit"].check.ok

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_ocelot_inferred_regions_exist(self, builds, name):
        assert builds[name]["ocelot"].regions


class TestExecution:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_continuous_run_clean(self, builds, name):
        meta = BENCHMARKS[name]
        for config in CONFIGS:
            result = run_continuous(
                builds[name][config], meta.env_factory(0),
                costs=meta.cost_model(),
            )
            assert result.stats.completed, (name, config)
            assert result.stats.violations == 0, (name, config)

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_ocelot_survives_every_pathological_point(self, builds, name):
        meta = BENCHMARKS[name]
        compiled = builds[name]["ocelot"]
        plan = compiled.detector_plan()
        for site in sorted(plan.checks):
            result = run_once(
                compiled,
                meta.env_factory(0),
                ScheduledFailures([FailurePoint(chain=site)], off_cycles=20_000),
                costs=meta.cost_model(),
                plan=plan,
            )
            assert result.stats.completed, (name, site)
            assert result.stats.violations == 0, (name, site)

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_repeated_activations_accumulate_state(self, builds, name):
        meta = BENCHMARKS[name]
        outcome = run_activations(
            builds[name]["ocelot"],
            meta.env_factory(0),
            ContinuousPower(),
            budget_cycles=10**9,
            costs=meta.cost_model(),
            max_activations=4,
        )
        assert len(outcome.records) == 4
        assert all(r.completed and r.violations == 0 for r in outcome.records)


class TestSourceHygiene:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_annotation_counts_match_source(self, name):
        """The effort-model metadata must agree with the actual source."""
        meta = BENCHMARKS[name]
        text = meta.source
        # "Fresh(" does not substring-match "FreshConsistent(" (the paren
        # differs), so no subtraction is needed for the fresh count.
        fresh = text.count("Fresh(") + text.count("let fresh ")
        consistent = text.count("Consistent(") - text.count("FreshConsistent(")
        consistent += text.count("let consistent(")
        freshcon = text.count("FreshConsistent(")
        assert fresh == meta.fresh_lines, name
        assert consistent == meta.consistent_lines, name
        assert freshcon == meta.freshcon_lines, name

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_constraints_column_is_consistent(self, name):
        meta = BENCHMARKS[name]
        if meta.fresh_lines:
            assert "Fresh" in meta.constraints
        if meta.consistent_lines:
            assert "Con" in meta.constraints
        if meta.freshcon_lines:
            assert "FreshCon" in meta.constraints
