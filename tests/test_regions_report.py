"""Region-size report tests (the Section 8 argument, quantified)."""

import pytest

from repro.core.feasibility import profile_usable_energy
from repro.eval.profiles import STANDARD_PROFILE
from repro.eval.regions_report import measure_regions_report, regions_report


@pytest.fixture(scope="module")
def rows():
    return measure_regions_report()


class TestShape:
    def test_covers_all_apps(self, rows):
        assert {r.app for r in rows} == {
            "activity", "cem", "greenhouse", "photo", "send_photo", "tire",
        }

    def test_naive_never_smaller(self, rows):
        for row in rows:
            assert row.naive_max_extent >= row.inferred_max_extent, row.app
            assert row.naive_max_cycles >= row.inferred_max_cycles, row.app

    def test_cem_shows_biggest_blowup(self, rows):
        """CEM's constraint covers a few instructions inside a compute-heavy
        program: naive wrapping inflates the region the most."""
        by_app = {r.app: r for r in rows}
        assert by_app["cem"].extent_ratio == max(r.extent_ratio for r in rows)
        assert by_app["cem"].extent_ratio > 3

    def test_figure10_infeasibility_scenario(self, rows):
        """At least one naive region exceeds the guaranteed energy window
        that every Ocelot region fits in -- the Figure 10 failure mode:
        'the program with manually-added regions would fail to complete,
        while the Ocelot program would not'."""
        usable = profile_usable_energy(STANDARD_PROFILE)
        assert all(r.inferred_max_cycles <= usable for r in rows)
        assert any(r.naive_max_cycles > usable for r in rows)

    def test_renders(self, rows):
        table = regions_report(rows)
        assert len(table.rows) == 6
        assert "naive" in table.render_text()
