"""Shared fixtures: canonical programs and compiled builds."""

from __future__ import annotations

import os

# Debug builds throughout the suite: the pass manager re-verifies the IR
# after every pass and the check optimizer re-verifies its plan, so a
# broken transform fails the offending test with the pass named.
os.environ.setdefault("REPRO_DEBUG_VERIFY", "1")

import pytest  # noqa: E402

from repro.core.pipeline import compile_source  # noqa: E402
from repro.sensors.environment import Environment, steps  # noqa: E402

#: The weather-station program of Figure 2: a thermometer alarm (freshness)
#: plus a pressure/humidity log pair (temporal consistency).
WEATHER_SRC = """\
inputs temp, pres, hum;

fn main() {
  let x = input(temp);
  Fresh(x);
  if x > 5 {
    alarm();
  }
  let consistent(1) y = input(pres);
  let consistent(1) z = input(hum);
  log(y, z);
}
"""

#: The Figure 6 program: inputs reached through call chains, including two
#: distinct calls to the same sensor function.
CALLS_SRC = """\
inputs sense_t, sense_p;

fn tmp() {
  let t = input(sense_t);
  let t2 = t / 2;
  return t2;
}

fn pres() {
  let p = input(sense_p);
  let p2 = p + 1;
  return p2;
}

fn confirm() {
  let consistent(1) y = pres();
  let consistent(1) y2 = pres();
  log(y, y2);
}

fn app() {
  let x = tmp();
  Fresh(x);
  log(x);
}

fn main() {
  app();
  confirm();
}
"""

#: Nonvolatile state exercising WAR dependencies and undo logging.
NV_SRC = """\
inputs ch;
nonvolatile total = 0;
nonvolatile count = 0;
nonvolatile ring[4];

fn main() {
  let v = input(ch);
  Fresh(v);
  total = total + v;
  count = count + 1;
  ring[count % 4] = v;
  log(total);
}
"""


@pytest.fixture(scope="session")
def weather_ocelot():
    return compile_source(WEATHER_SRC, "ocelot")


@pytest.fixture(scope="session")
def weather_jit():
    return compile_source(WEATHER_SRC, "jit")


@pytest.fixture(scope="session")
def weather_atomics():
    return compile_source(WEATHER_SRC, "atomics")


@pytest.fixture(scope="session")
def calls_ocelot():
    return compile_source(CALLS_SRC, "ocelot")


@pytest.fixture(scope="session")
def nv_ocelot():
    return compile_source(NV_SRC, "ocelot")


@pytest.fixture()
def weather_env():
    """Temperature steps across the alarm threshold; pres/hum flip together."""
    return Environment(
        {
            "temp": steps([2, 9], 4000),
            "pres": steps([100, 60], 4000),
            "hum": steps([20, 85], 4000),
        }
    )


@pytest.fixture()
def flat_env():
    return Environment.constant_for(["temp", "pres", "hum", "ch", "sense_t", "sense_p"], 7)
