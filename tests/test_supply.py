"""Power supply tests."""

import pytest

from repro.analysis.provenance import Chain
from repro.energy.capacitor import Capacitor
from repro.energy.harvester import ConstantHarvester
from repro.ir.instructions import InstrId
from repro.runtime.supply import (
    ContinuousPower,
    EnergyDrivenSupply,
    FailurePoint,
    ScheduledFailures,
)

UID = InstrId("main", 3)
OTHER = InstrId("main", 9)


class TestContinuousPower:
    def test_never_fails(self):
        supply = ContinuousPower()
        assert not supply.fail_before(UID)
        assert not supply.consume(10**9)
        assert not supply.would_trip(10**9)


class TestScheduledFailures:
    def test_fires_once_at_occurrence(self):
        supply = ScheduledFailures([FailurePoint(UID, occurrence=2)])
        assert not supply.fail_before(UID)  # occurrence 1
        assert supply.fail_before(UID)  # occurrence 2: fire
        assert not supply.fail_before(UID)  # never re-arms

    def test_unrelated_uid_ignored(self):
        supply = ScheduledFailures([FailurePoint(UID)])
        assert not supply.fail_before(OTHER)

    def test_chain_point_matches_exact_context(self):
        site = Chain(ids=(InstrId("main", 1), UID))
        wrong = Chain(ids=(InstrId("main", 2), UID))
        supply = ScheduledFailures([FailurePoint(chain=site)])
        assert not supply.fail_before(UID, wrong)
        assert supply.fail_before(UID, site)
        assert supply.all_fired

    def test_watched_uids(self):
        site = Chain(ids=(UID,))
        supply = ScheduledFailures([FailurePoint(chain=site), FailurePoint(OTHER)])
        assert supply.watched_uids() == frozenset({UID, OTHER})

    def test_point_requires_exactly_one_target(self):
        with pytest.raises(ValueError):
            FailurePoint()
        with pytest.raises(ValueError):
            FailurePoint(uid=UID, chain=Chain(ids=(UID,)))

    def test_off_cycles_configurable(self):
        supply = ScheduledFailures([], off_cycles=123)
        assert supply.off_and_recharge() == 123


class TestEnergyDrivenSupply:
    def make(self, boot=(1.0, 1.0), capacity=1000, low=200, rate=500):
        return EnergyDrivenSupply(
            Capacitor(capacity, low),
            ConstantHarvester(rate),
            boot_fraction=boot,
            seed=11,
        )

    def test_consume_trips_at_threshold(self):
        supply = self.make()
        assert not supply.consume(700)
        assert supply.consume(100)

    def test_would_trip_previews_without_draining(self):
        supply = self.make()
        level = supply.capacitor.level
        assert supply.would_trip(900)
        assert supply.capacitor.level == level

    def test_recharge_refills_fully_without_jitter(self):
        supply = self.make()
        supply.consume(800)
        off = supply.off_and_recharge()
        assert off > 0
        assert supply.capacitor.level == 1000

    def test_boot_jitter_randomizes_levels(self):
        supply = self.make(boot=(0.3, 1.0))
        levels = []
        for _ in range(6):
            supply.consume(supply.capacitor.usable)
            supply.off_and_recharge()
            levels.append(supply.capacitor.level)
        assert len(set(levels)) > 1
        assert all(lvl > 200 for lvl in levels)

    def test_invalid_boot_fraction(self):
        with pytest.raises(ValueError):
            self.make(boot=(0.0, 1.0))
        with pytest.raises(ValueError):
            self.make(boot=(0.9, 0.5))

    def test_checkpoint_energy_uses_reserve(self):
        supply = self.make()
        supply.consume(800)  # at threshold
        supply.checkpoint_energy(150)
        assert supply.capacitor.level == 50
