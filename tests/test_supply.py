"""Power supply tests."""

import pytest

from repro.analysis.provenance import Chain
from repro.energy.capacitor import Capacitor
from repro.energy.harvester import ConstantHarvester
from repro.ir.instructions import InstrId
from repro.runtime.supply import (
    ContinuousPower,
    EnergyDrivenSupply,
    FailurePoint,
    ScheduledFailures,
)

UID = InstrId("main", 3)
OTHER = InstrId("main", 9)


class TestContinuousPower:
    def test_never_fails(self):
        supply = ContinuousPower()
        assert not supply.fail_before(UID)
        assert not supply.consume(10**9)
        assert not supply.would_trip(10**9)


class TestScheduledFailures:
    def test_fires_once_at_occurrence(self):
        supply = ScheduledFailures([FailurePoint(UID, occurrence=2)])
        assert not supply.fail_before(UID)  # occurrence 1
        assert supply.fail_before(UID)  # occurrence 2: fire
        assert not supply.fail_before(UID)  # never re-arms

    def test_unrelated_uid_ignored(self):
        supply = ScheduledFailures([FailurePoint(UID)])
        assert not supply.fail_before(OTHER)

    def test_chain_point_matches_exact_context(self):
        site = Chain(ids=(InstrId("main", 1), UID))
        wrong = Chain(ids=(InstrId("main", 2), UID))
        supply = ScheduledFailures([FailurePoint(chain=site)])
        assert not supply.fail_before(UID, wrong)
        assert supply.fail_before(UID, site)
        assert supply.all_fired

    def test_watched_uids(self):
        site = Chain(ids=(UID,))
        supply = ScheduledFailures([FailurePoint(chain=site), FailurePoint(OTHER)])
        assert supply.watched_uids() == frozenset({UID, OTHER})

    def test_point_requires_exactly_one_target(self):
        with pytest.raises(ValueError):
            FailurePoint()
        with pytest.raises(ValueError):
            FailurePoint(uid=UID, chain=Chain(ids=(UID,)))

    def test_off_cycles_configurable(self):
        supply = ScheduledFailures([], off_cycles=123)
        assert supply.off_and_recharge() == 123


class TestEnergyDrivenSupply:
    def make(self, boot=(1.0, 1.0), capacity=1000, low=200, rate=500):
        return EnergyDrivenSupply(
            Capacitor(capacity, low),
            ConstantHarvester(rate),
            boot_fraction=boot,
            seed=11,
        )

    def test_consume_trips_at_threshold(self):
        supply = self.make()
        assert not supply.consume(700)
        assert supply.consume(100)

    def test_would_trip_previews_without_draining(self):
        supply = self.make()
        level = supply.capacitor.level
        assert supply.would_trip(900)
        assert supply.capacitor.level == level

    def test_recharge_refills_fully_without_jitter(self):
        supply = self.make()
        supply.consume(800)
        off = supply.off_and_recharge()
        assert off > 0
        assert supply.capacitor.level == 1000

    def test_boot_jitter_randomizes_levels(self):
        supply = self.make(boot=(0.3, 1.0))
        levels = []
        for _ in range(6):
            supply.consume(supply.capacitor.usable)
            supply.off_and_recharge()
            levels.append(supply.capacitor.level)
        assert len(set(levels)) > 1
        assert all(lvl > 200 for lvl in levels)

    def test_invalid_boot_fraction(self):
        with pytest.raises(ValueError):
            self.make(boot=(0.0, 1.0))
        with pytest.raises(ValueError):
            self.make(boot=(0.9, 0.5))

    def test_checkpoint_energy_uses_reserve(self):
        supply = self.make()
        supply.consume(800)  # at threshold
        supply.checkpoint_energy(150)
        assert supply.capacitor.level == 50


class TestSpawn:
    """Per-device derivation: fleet instances from one prototype."""

    def make_proto(self, rate=400, spread=2.0):
        from repro.energy.harvester import NoisyHarvester

        return EnergyDrivenSupply(
            Capacitor(1000, 200),
            NoisyHarvester(rate, seed=0, spread=spread),
            boot_fraction=(0.5, 1.0),
            seed=1,
        )

    def drain_cycle(self, supply, n=5):
        outs = []
        for _ in range(n):
            supply.consume(supply.capacitor.usable + 1)
            outs.append(supply.off_and_recharge())
        return outs

    def test_spawn_is_deterministic_per_seed(self):
        proto = self.make_proto()
        a = proto.spawn(7)
        b = proto.spawn(7)
        assert self.drain_cycle(a) == self.drain_cycle(b)

    def test_spawn_seeds_are_independent_streams(self):
        proto = self.make_proto()
        a = proto.spawn(7)
        b = proto.spawn(8)
        assert self.drain_cycle(a) != self.drain_cycle(b)

    def test_spawn_copies_physical_configuration(self):
        proto = self.make_proto(rate=123, spread=1.5)
        child = proto.spawn(3)
        assert child.capacitor.capacity == 1000
        assert child.capacitor.low_threshold == 200
        assert child.capacitor.level == 1000  # fully charged, not shared
        assert child.harvester.rate_per_kilocycle == 123
        assert child.harvester.spread == 1.5
        assert child.boot_fraction == (0.5, 1.0)
        proto.consume(500)
        assert child.capacitor.level == 1000  # no shared capacitor state

    def test_reseed_replays_the_stream(self):
        supply = self.make_proto().spawn(9)
        first = self.drain_cycle(supply)
        supply.reseed(9)
        assert self.drain_cycle(supply) == first

    def test_scheduled_failures_spawn_rearms(self):
        proto = ScheduledFailures([FailurePoint(UID)], off_cycles=77)
        assert proto.fail_before(UID)
        assert proto.all_fired
        child = proto.spawn(0)
        assert not child.all_fired
        assert child.off_cycles == 77
        assert child.fail_before(UID)
        # Spawning does not disturb the parent.
        assert proto.all_fired

    def test_scheduled_failures_reseed_rearms_in_place(self):
        supply = ScheduledFailures([FailurePoint(UID)])
        assert supply.fail_before(UID)
        supply.reseed(0)
        assert supply.fail_before(UID)

    def test_continuous_spawn_is_continuous(self):
        child = ContinuousPower().spawn(5)
        assert not child.consume(10**9)
