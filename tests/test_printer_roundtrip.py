"""Pretty-printer tests: fixed cases plus hypothesis round-trips."""

from hypothesis import given, settings

from repro.lang.parser import parse_program
from repro.lang.printer import print_program

from tests.strategies import programs


def normalize(source: str) -> str:
    return print_program(parse_program(source))


class TestFixedRoundTrips:
    def test_simple_program(self):
        source = (
            "inputs ch;\n\nfn main() {\n  let x = input(ch);\n  Fresh(x);\n"
            "  log(x);\n}\n"
        )
        assert normalize(source) == source

    def test_idempotent_normalization(self):
        source = """
        inputs a,b;
        nonvolatile g = 3;
        nonvolatile arr[2] = [4, 5];
        fn helper(&out) { *out = input(a); }
        fn main() {
          let consistent(1) x = input(a);
          let consistent(1) y = input(b);
          if x > y { alarm(); } else { log(x, y); }
          repeat 2 { work(10); }
          atomic { g = g + 1; }
          arr[0] = x;
        }
        """
        once = normalize(source)
        assert normalize(once) == once

    def test_freshconsistent_round_trip(self):
        source = "fn main() {\n  let x = 1;\n  FreshConsistent(x, 2);\n}\n"
        assert normalize(source) == source


class TestExprPrinting:
    def test_minimal_parentheses(self):
        src = "fn main() { let x = (1 + 2) * 3; }"
        out = normalize(src)
        assert "(1 + 2) * 3" in out

    def test_no_redundant_parentheses(self):
        src = "fn main() { let x = 1 + 2 * 3; }"
        out = normalize(src)
        assert "1 + 2 * 3" in out
        assert "(" not in out.splitlines()[1].replace("main()", "")

    def test_nested_unary(self):
        src = "fn main() { let x = !true; let y = -(1 + 2); }"
        out = normalize(src)
        assert "!true" in out
        assert "-(1 + 2)" in out

    def test_left_assoc_subtraction_keeps_meaning(self):
        src = "fn main() { let x = 10 - (3 - 2); }"
        out = normalize(src)
        assert "10 - (3 - 2)" in out


class TestHypothesisRoundTrip:
    @given(programs())
    @settings(max_examples=60, deadline=None)
    def test_print_parse_print_fixpoint(self, program):
        text = print_program(program)
        reparsed = parse_program(text)
        assert print_program(reparsed) == text
