"""Vectorized fleet executor: parity, memo-key soundness, hit rates.

The vector executor's whole value proposition is "same bytes, fewer
instructions": these tests pin the byte-identity against the serial and
sharded executors (including under hypothesis-generated fleets), prove
the memo key cannot produce false hits (perturbing one nonvolatile bit,
one stored value, one taint, or one environment segment changes the
key), and check that the intended hits actually happen (a homogeneous
deterministic fleet replays almost everything).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import BENCHMARKS
from repro.core.cache import GLOBAL_CACHE
from repro.eval.campaign import SupplySpec
from repro.fleet import (
    DeviceClass,
    FleetAggregator,
    FleetCheckpoint,
    FleetError,
    FleetSpec,
    NVCodec,
    VectorFleetExecutor,
    aggregate_fingerprint,
    checkpoint_fingerprint,
    run_fleet,
    run_shard,
)
from repro.ir.instructions import InstrId
from repro.runtime.executor import NVState
from repro.runtime.values import InputEvent, TVal
from repro.sensors.environment import Environment, constant, steps
from tests.strategies import fleet_specs


def uniform_spec(count: int = 40, **overrides) -> FleetSpec:
    """A homogeneous fleet whose devices are provably equivalent.

    Deterministic supply randomness (no harvest spread, degenerate boot
    band) plus no per-device jitter means every device repeats device
    zero's activations exactly -- the memoizer's best case.
    """
    defaults = dict(
        classes=(
            DeviceClass(
                name="tire",
                app="tire",
                config="ocelot",
                count=count,
                supply=SupplySpec(
                    name="rf",
                    harvest_rate=300,
                    harvest_spread=1.0,
                    boot_fraction=(1.0, 1.0),
                ),
            ),
        ),
        fleet_seed=11,
        budget_cycles=60_000,
        name="uniform",
    )
    defaults.update(overrides)
    return FleetSpec(**defaults)


def mixed_spec(**overrides) -> FleetSpec:
    """A small heterogeneous fleet with real stochastic supplies."""
    defaults = dict(
        classes=(
            DeviceClass(
                name="tire",
                app="tire",
                config="ocelot",
                count=5,
                supply=SupplySpec(name="rf", harvest_rate=300),
            ),
            DeviceClass(
                name="gh",
                app="greenhouse",
                config="jit",
                count=4,
                supply=SupplySpec(
                    name="weak", harvest_rate=220, seed_offset=3
                ),
                phase_jitter=4_000,
            ),
        ),
        fleet_seed=5,
        budget_cycles=30_000,
        name="mixed",
    )
    defaults.update(overrides)
    return FleetSpec(**defaults)


def _tire_codec() -> tuple[NVCodec, NVState]:
    meta = BENCHMARKS["tire"]
    compiled = GLOBAL_CACHE.get_or_compile(meta.source, "ocelot")
    plan = compiled.detector_plan()
    return NVCodec(compiled.module, plan), NVState.initial(compiled.module)


class TestVectorParity:
    def test_matches_serial_on_mixed_fleet(self):
        spec = mixed_spec()
        serial = run_fleet(spec, "serial")
        vector = run_fleet(spec, "vector")
        assert aggregate_fingerprint(vector) == aggregate_fingerprint(serial)
        assert vector.executor == vector.executor_used == "vector"
        assert serial.memo is None
        assert vector.memo is not None and vector.memo["misses"] > 0

    def test_matches_serial_on_uniform_fleet(self):
        spec = uniform_spec(count=12)
        serial = run_fleet(spec, "serial")
        vector = run_fleet(spec, "vector")
        assert aggregate_fingerprint(vector) == aggregate_fingerprint(serial)

    @given(spec=fleet_specs())
    @settings(max_examples=10, deadline=None)
    def test_vector_matches_serial_property(self, spec):
        devices = spec.expand()
        serial = run_shard(devices)
        vector = VectorFleetExecutor().run(devices)
        assert vector.to_json() == serial.to_json()

    def test_memo_survives_chunking(self):
        # One executor over many chunks must equal one-shot execution:
        # entries learned in chunk k legally replay in chunk k+1.
        spec = uniform_spec(count=20)
        devices = spec.expand()
        one_shot = VectorFleetExecutor().run(devices)
        chunked_executor = VectorFleetExecutor()
        merged = FleetAggregator()
        for lo in range(0, len(devices), 6):
            merged.merge(chunked_executor.run(devices[lo : lo + 6]))
        assert merged.to_json() == one_shot.to_json()
        assert chunked_executor.memo.stats.hits > 0


class TestMemoKeySoundness:
    def test_flipping_one_nv_bit_changes_token(self):
        codec, nv = _tire_codec()
        baseline = codec.encode(nv).token
        chains = sorted(codec._bit_index)
        assert chains, "tire/ocelot should have detector bit chains"
        nv.bits.set(chains[0])
        assert codec.encode(nv).token != baseline

    def test_each_bit_is_distinct(self):
        codec, nv = _tire_codec()
        chains = sorted(codec._bit_index)
        tokens = set()
        for chain in chains:
            fresh = NVState.initial(
                GLOBAL_CACHE.get_or_compile(
                    BENCHMARKS["tire"].source, "ocelot"
                ).module
            )
            fresh.bits.set(chain)
            tokens.add(codec.encode(fresh).token)
        assert len(tokens) == len(chains)

    @given(delta=st.integers(-1000, 1000).filter(lambda d: d != 0))
    @settings(max_examples=25, deadline=None)
    def test_perturbing_one_value_changes_token(self, delta):
        codec, nv = _tire_codec()
        baseline = codec.encode(nv).token
        name = sorted(nv.globals)[0]
        cell = nv.globals[name]
        nv.globals[name] = TVal(cell.value + delta, cell.taint)
        assert codec.encode(nv).token != baseline

    def test_tainting_a_value_changes_token(self):
        codec, nv = _tire_codec()
        ref = codec.encode(nv)
        assert ref.tainted is False
        name = sorted(nv.globals)[0]
        cell = nv.globals[name]
        event = InputEvent(uid=InstrId("main", 1), channel="pressure", tau=7)
        nv.globals[name] = TVal(cell.value, frozenset({event}))
        tainted = codec.encode(nv)
        assert tainted.token != ref.token
        assert tainted.tainted is True

    def test_changing_one_environment_segment_changes_token(self):
        env = Environment(
            {"pressure": steps([10, 20, 30], dwell=100), "temp": constant(4)}
        )
        period = env.period()
        assert period == 300
        # Same segment => same token; a different segment => different
        # token; one full period later => provably the same world again.
        assert env.segment_token(50) == env.segment_token(50)
        assert env.segment_token(50) != env.segment_token(150)
        assert env.segment_token(50) == env.segment_token(50 + period)

    def test_aperiodic_environment_never_collapses_times(self):
        from repro.sensors.environment import random_walk

        env = Environment({"walk": random_walk(0, 2, seed=9)})
        assert env.period() is None
        assert env.segment_token(123) == 123
        assert env.segment_token(123) != env.segment_token(456)

    def test_structural_fallback_agrees_on_identity(self):
        # Values beyond int64 force the structural token path; identical
        # states must still collide and perturbed ones must not.
        codec, nv = _tire_codec()
        name = sorted(nv.globals)[0]
        nv.globals[name] = TVal(2**80, frozenset())
        one = codec.encode(nv).token
        two = codec.encode(nv).token
        assert one == two
        nv.globals[name] = TVal(2**80 + 1, frozenset())
        assert codec.encode(nv).token != one


class TestHitRates:
    def test_homogeneous_fleet_replays_almost_everything(self):
        executor = VectorFleetExecutor()
        result = run_fleet(uniform_spec(count=50), executor=executor)
        stats = executor.memo.stats
        assert stats.hits + stats.misses > 0
        # 49 of 50 equivalent devices ride the first device's entries.
        assert stats.hit_rate >= 0.9
        assert result.memo["hit_rate"] >= 0.9

    def test_jittered_fleet_still_correct_with_low_hit_rate(self):
        spec = FleetSpec(
            classes=(
                DeviceClass(
                    name="tire",
                    app="tire",
                    config="ocelot",
                    count=6,
                    supply=SupplySpec(name="rf", harvest_rate=300),
                ),
            ),
            fleet_seed=11,
            budget_cycles=30_000,
            name="jittered",
        )
        serial = run_fleet(spec, "serial")
        vector = run_fleet(spec, "vector")
        assert aggregate_fingerprint(vector) == aggregate_fingerprint(serial)


class TestCheckpointFamilyGate:
    def test_cross_family_resume_with_matching_fingerprint(self, tmp_path):
        spec = mixed_spec()
        full = run_fleet(spec, "serial")
        path = tmp_path / "fleet.ckpt.json"
        partial = run_shard(spec.expand()[:3])
        FleetCheckpoint(
            checkpoint_fingerprint(spec),
            3,
            partial.to_dict(),
            executor_family="serial",
        ).save(path)
        resumed = run_fleet(spec, "vector", checkpoint_path=path)
        assert aggregate_fingerprint(resumed) == aggregate_fingerprint(full)
        # Every family that built the aggregate is reported.
        assert resumed.executor_used == "serial+vector"

    def test_legacy_checkpoint_without_parity_scheme_rejected(self, tmp_path):
        spec = mixed_spec()
        path = tmp_path / "fleet.ckpt.json"
        # A pre-parity-scheme checkpoint bound only the spec fingerprint.
        FleetCheckpoint(
            spec.fingerprint(), 3, FleetAggregator().to_dict()
        ).save(path)
        with pytest.raises(FleetError, match="parity scheme|different"):
            run_fleet(spec, "vector", checkpoint_path=path)

    def test_checkpoint_without_family_rejected(self, tmp_path):
        spec = mixed_spec()
        path = tmp_path / "fleet.ckpt.json"
        FleetCheckpoint(
            checkpoint_fingerprint(spec), 3, FleetAggregator().to_dict()
        ).save(path)
        with pytest.raises(FleetError, match="executor family"):
            run_fleet(spec, "serial", checkpoint_path=path)

    def test_vector_checkpoint_records_family(self, tmp_path):
        spec = uniform_spec(count=8)
        path = tmp_path / "fleet.ckpt.json"
        run_fleet(spec, "vector", checkpoint_path=path, checkpoint_every=3)
        checkpoint = FleetCheckpoint.load(path)
        assert checkpoint.executor_family == "vector"
        assert checkpoint.fingerprint == checkpoint_fingerprint(spec)
