"""Vectorized fleet executor: parity, memo-key soundness, hit rates.

The vector executor's whole value proposition is "same bytes, fewer
instructions": these tests pin the byte-identity against the serial and
sharded executors (including under hypothesis-generated fleets, with
quantized supply keys at aggressive bucket sizes and warm disk-backed
memo runs), prove the memo key cannot produce false hits (perturbing one
nonvolatile bit, one stored value, one taint, one environment segment,
or one charge bucket changes the key), and check that the intended hits
actually happen (a homogeneous deterministic fleet replays almost
everything; a jittered fleet scores nonzero hits via quantization).
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import BENCHMARKS
from repro.core.cache import GLOBAL_CACHE
from repro.energy.segments import quantized_supply_token, supply_memo_token
from repro.eval.campaign import SupplySpec
from repro.fleet import (
    ActivationMemo,
    DeviceClass,
    FleetAggregator,
    FleetCheckpoint,
    FleetError,
    FleetSpec,
    MemoStore,
    NVCodec,
    VectorFleetExecutor,
    aggregate_fingerprint,
    checkpoint_fingerprint,
    run_fleet,
    run_shard,
)
from repro.fleet.memostore import MEMO_SCHEMA
from repro.ir.instructions import InstrId
from repro.runtime.executor import NVState
from repro.runtime.supply import FailurePoint, ScheduledFailures
from repro.runtime.values import InputEvent, TVal
from repro.sensors.environment import Environment, constant, steps
from tests.strategies import fleet_specs


def uniform_spec(count: int = 40, **overrides) -> FleetSpec:
    """A homogeneous fleet whose devices are provably equivalent.

    Deterministic supply randomness (no harvest spread, degenerate boot
    band) plus no per-device jitter means every device repeats device
    zero's activations exactly -- the memoizer's best case.
    """
    defaults = dict(
        classes=(
            DeviceClass(
                name="tire",
                app="tire",
                config="ocelot",
                count=count,
                supply=SupplySpec(
                    name="rf",
                    harvest_rate=300,
                    harvest_spread=1.0,
                    boot_fraction=(1.0, 1.0),
                ),
            ),
        ),
        fleet_seed=11,
        budget_cycles=60_000,
        name="uniform",
    )
    defaults.update(overrides)
    return FleetSpec(**defaults)


def mixed_spec(**overrides) -> FleetSpec:
    """A small heterogeneous fleet with real stochastic supplies."""
    defaults = dict(
        classes=(
            DeviceClass(
                name="tire",
                app="tire",
                config="ocelot",
                count=5,
                supply=SupplySpec(name="rf", harvest_rate=300),
            ),
            DeviceClass(
                name="gh",
                app="greenhouse",
                config="jit",
                count=4,
                supply=SupplySpec(
                    name="weak", harvest_rate=220, seed_offset=3
                ),
                phase_jitter=4_000,
            ),
        ),
        fleet_seed=5,
        budget_cycles=30_000,
        name="mixed",
    )
    defaults.update(overrides)
    return FleetSpec(**defaults)


def jittered_spec(count: int = 12, **overrides) -> FleetSpec:
    """A stochastic fleet with per-device harvest jitter, one shared env.

    Exact supply tokens are unique per device here (per-device rates and
    RNG streams); only quantized keys can score hits.
    """
    defaults = dict(
        classes=(
            DeviceClass(
                name="tire-jittered",
                app="tire",
                config="ocelot",
                count=count,
                supply=SupplySpec(name="rf", harvest_rate=300),
                harvest_jitter=0.5,
            ),
        ),
        fleet_seed=29,
        budget_cycles=30_000,
        name="jittered",
    )
    defaults.update(overrides)
    return FleetSpec(**defaults)


def _harvest_supply(seed: int = 0, rate: int = 300):
    """A spawned stochastic :class:`EnergyDrivenSupply` on stream ``seed``."""
    return SupplySpec(name="rf", harvest_rate=rate).build(0).spawn(seed)


def _tire_codec() -> tuple[NVCodec, NVState]:
    meta = BENCHMARKS["tire"]
    compiled = GLOBAL_CACHE.get_or_compile(meta.source, "ocelot")
    plan = compiled.detector_plan()
    return NVCodec(compiled.module, plan), NVState.initial(compiled.module)


class TestVectorParity:
    def test_matches_serial_on_mixed_fleet(self):
        spec = mixed_spec()
        serial = run_fleet(spec, "serial")
        vector = run_fleet(spec, "vector")
        assert aggregate_fingerprint(vector) == aggregate_fingerprint(serial)
        assert vector.executor == vector.executor_used == "vector"
        assert serial.memo is None
        assert vector.memo is not None and vector.memo["misses"] > 0

    def test_matches_serial_on_uniform_fleet(self):
        spec = uniform_spec(count=12)
        serial = run_fleet(spec, "serial")
        vector = run_fleet(spec, "vector")
        assert aggregate_fingerprint(vector) == aggregate_fingerprint(serial)

    @given(spec=fleet_specs())
    @settings(max_examples=10, deadline=None)
    def test_vector_matches_serial_property(self, spec):
        devices = spec.expand()
        serial = run_shard(devices)
        vector = VectorFleetExecutor().run(devices)
        assert vector.to_json() == serial.to_json()

    def test_memo_survives_chunking(self):
        # One executor over many chunks must equal one-shot execution:
        # entries learned in chunk k legally replay in chunk k+1.
        spec = uniform_spec(count=20)
        devices = spec.expand()
        one_shot = VectorFleetExecutor().run(devices)
        chunked_executor = VectorFleetExecutor()
        merged = FleetAggregator()
        for lo in range(0, len(devices), 6):
            merged.merge(chunked_executor.run(devices[lo : lo + 6]))
        assert merged.to_json() == one_shot.to_json()
        assert chunked_executor.memo.stats.hits > 0


class TestMemoKeySoundness:
    def test_flipping_one_nv_bit_changes_token(self):
        codec, nv = _tire_codec()
        baseline = codec.encode(nv).token
        chains = sorted(codec._bit_index)
        assert chains, "tire/ocelot should have detector bit chains"
        nv.bits.set(chains[0])
        assert codec.encode(nv).token != baseline

    def test_each_bit_is_distinct(self):
        codec, nv = _tire_codec()
        chains = sorted(codec._bit_index)
        tokens = set()
        for chain in chains:
            fresh = NVState.initial(
                GLOBAL_CACHE.get_or_compile(
                    BENCHMARKS["tire"].source, "ocelot"
                ).module
            )
            fresh.bits.set(chain)
            tokens.add(codec.encode(fresh).token)
        assert len(tokens) == len(chains)

    @given(delta=st.integers(-1000, 1000).filter(lambda d: d != 0))
    @settings(max_examples=25, deadline=None)
    def test_perturbing_one_value_changes_token(self, delta):
        codec, nv = _tire_codec()
        baseline = codec.encode(nv).token
        name = sorted(nv.globals)[0]
        cell = nv.globals[name]
        nv.globals[name] = TVal(cell.value + delta, cell.taint)
        assert codec.encode(nv).token != baseline

    def test_tainting_a_value_changes_token(self):
        codec, nv = _tire_codec()
        ref = codec.encode(nv)
        assert ref.tainted is False
        name = sorted(nv.globals)[0]
        cell = nv.globals[name]
        event = InputEvent(uid=InstrId("main", 1), channel="pressure", tau=7)
        nv.globals[name] = TVal(cell.value, frozenset({event}))
        tainted = codec.encode(nv)
        assert tainted.token != ref.token
        assert tainted.tainted is True

    def test_changing_one_environment_segment_changes_token(self):
        env = Environment(
            {"pressure": steps([10, 20, 30], dwell=100), "temp": constant(4)}
        )
        period = env.period()
        assert period == 300
        # Same segment => same token; a different segment => different
        # token; one full period later => provably the same world again.
        assert env.segment_token(50) == env.segment_token(50)
        assert env.segment_token(50) != env.segment_token(150)
        assert env.segment_token(50) == env.segment_token(50 + period)

    def test_aperiodic_environment_never_collapses_times(self):
        from repro.sensors.environment import random_walk

        env = Environment({"walk": random_walk(0, 2, seed=9)})
        assert env.period() is None
        assert env.segment_token(123) == 123
        assert env.segment_token(123) != env.segment_token(456)

    def test_structural_fallback_agrees_on_identity(self):
        # Values beyond int64 force the structural token path; identical
        # states must still collide and perturbed ones must not.
        codec, nv = _tire_codec()
        name = sorted(nv.globals)[0]
        nv.globals[name] = TVal(2**80, frozenset())
        one = codec.encode(nv).token
        two = codec.encode(nv).token
        assert one == two
        nv.globals[name] = TVal(2**80 + 1, frozenset())
        assert codec.encode(nv).token != one


class TestHitRates:
    def test_homogeneous_fleet_replays_almost_everything(self):
        executor = VectorFleetExecutor()
        result = run_fleet(uniform_spec(count=50), executor=executor)
        stats = executor.memo.stats
        assert stats.hits + stats.misses > 0
        # 49 of 50 equivalent devices ride the first device's entries.
        assert stats.hit_rate >= 0.9
        assert result.memo["hit_rate"] >= 0.9

    def test_jittered_fleet_still_correct_with_low_hit_rate(self):
        spec = FleetSpec(
            classes=(
                DeviceClass(
                    name="tire",
                    app="tire",
                    config="ocelot",
                    count=6,
                    supply=SupplySpec(name="rf", harvest_rate=300),
                ),
            ),
            fleet_seed=11,
            budget_cycles=30_000,
            name="jittered",
        )
        serial = run_fleet(spec, "serial")
        vector = run_fleet(spec, "vector")
        assert aggregate_fingerprint(vector) == aggregate_fingerprint(serial)


class TestQuantizedSupplyTokens:
    """Soundness of bucketed supply keys (the no-false-hit contract)."""

    @given(
        level=st.integers(601, 3000),
        delta=st.integers(-600, 600).filter(lambda d: d != 0),
        bucket_size=st.sampled_from([1, 7, 75, 300, 1500]),
    )
    @settings(max_examples=60, deadline=None)
    def test_bucket_crossing_perturbation_changes_key(
        self, level, delta, bucket_size
    ):
        supply = _harvest_supply(seed=3)
        supply.capacitor.level = level
        baseline = quantized_supply_token(supply, bucket_size)
        assert baseline is not None
        supply.capacitor.level = level + delta
        perturbed = quantized_supply_token(supply, bucket_size)
        crosses = (level // bucket_size) != ((level + delta) // bucket_size)
        if crosses:
            assert perturbed != baseline
        else:
            assert perturbed == baseline

    def test_quantized_token_ignores_per_device_randomness(self):
        # Two devices with different seeds and harvest rates: exact
        # tokens must differ (RNG streams diverge), quantized tokens at
        # the same charge level must agree -- that is the whole point.
        one = _harvest_supply(seed=1, rate=200)
        two = _harvest_supply(seed=2, rate=400)
        assert supply_memo_token(one) != supply_memo_token(two)
        assert quantized_supply_token(one, 75) == quantized_supply_token(
            two, 75
        )

    def test_quantized_token_tracks_geometry(self):
        # Same bucket index on different capacitor geometry must differ.
        small = SupplySpec(name="a", capacity=2000, low_threshold=400)
        big = SupplySpec(name="b", capacity=4000, low_threshold=800)
        one = small.build(0).spawn(1)
        two = big.build(0).spawn(1)
        one.capacitor.level = two.capacitor.level = 1500
        assert quantized_supply_token(one, 75) != quantized_supply_token(
            two, 75
        )

    def test_quantized_token_conservative_fallbacks(self):
        supply = _harvest_supply()
        assert quantized_supply_token(supply, 0) is None
        from repro.runtime.supply import ContinuousPower

        assert quantized_supply_token(ContinuousPower(), 75) is None

    @given(spec=fleet_specs(), buckets=st.sampled_from([1, 2, 5, 32, 500]))
    @settings(max_examples=10, deadline=None)
    def test_bucketed_replay_matches_serial_property(self, spec, buckets):
        # The acceptance property: byte parity under quantized keys at
        # aggressive bucket sizes, across random apps x configs x
        # jittered fleets.  Coarse buckets collapse more devices onto
        # one key; the reboot-free replay gate must keep every hit
        # bit-identical to real execution.
        devices = spec.expand()
        serial = run_shard(devices)
        vector = VectorFleetExecutor(supply_buckets=buckets).run(devices)
        assert vector.to_json() == serial.to_json()

    def test_jittered_fleet_scores_nonzero_hits(self):
        spec = jittered_spec(count=12)
        serial = run_fleet(spec, "serial")
        executor = VectorFleetExecutor()
        vector = run_fleet(spec, executor=executor)
        assert aggregate_fingerprint(vector) == aggregate_fingerprint(serial)
        # Exact tokens scored exactly 0 here; quantization must not.
        assert executor.memo.stats.hits > 0

    def test_scheduled_failures_armed_token_quantizes_history(self):
        # Devices that reached the same *armed* schedule state through
        # different firing histories must compare equal: the fired
        # bookkeeping can never influence a future answer.
        a_uid, b_uid = InstrId("main", 1), InstrId("main", 9)
        fired_path = ScheduledFailures(
            [FailurePoint(uid=a_uid), FailurePoint(uid=b_uid, occurrence=2)],
            off_cycles=500,
        )
        assert fired_path.fail_before(a_uid) is True  # fire point A
        fresh_path = ScheduledFailures(
            [FailurePoint(uid=b_uid, occurrence=2)], off_cycles=500
        )
        assert fired_path.memo_token() == fresh_path.memo_token()
        # ... but progress toward an armed point still distinguishes.
        fresh_path.fail_before(b_uid)
        assert fired_path.memo_token() != fresh_path.memo_token()


class TestMemoCapAndEviction:
    def test_lru_eviction_order_and_stats(self):
        memo = ActivationMemo(max_entries=2)
        memo.put("a", 1)
        memo.put("b", 2)
        assert memo.get("a") == 1  # refresh "a": "b" is now LRU
        memo.put("c", 3)
        assert memo.get("b") is None
        assert memo.get("a") == 1 and memo.get("c") == 3
        assert memo.stats.evictions == 1

    def test_byte_cap_bounds_the_table(self):
        entry_size = len(pickle.dumps("x" * 100, pickle.HIGHEST_PROTOCOL))
        memo = ActivationMemo(max_entries=1000, max_bytes=3 * entry_size)
        for i in range(10):
            memo.put(i, "x" * 100)
        assert len(memo) <= 3
        assert memo.stats.evictions >= 7

    def test_capped_memo_produces_byte_identical_aggregates(self):
        # The satellite bugfix contract: eviction only causes re-misses,
        # never wrong replays -- aggregates must not change by a byte.
        for spec in (uniform_spec(count=20), jittered_spec(count=8)):
            devices = spec.expand()
            unbounded = VectorFleetExecutor().run(devices)
            capped_executor = VectorFleetExecutor(max_entries=4)
            capped = capped_executor.run(devices)
            assert capped.to_json() == unbounded.to_json()
        assert capped_executor.memo.stats.evictions > 0
        assert len(capped_executor.memo) <= 4


class TestPersistentMemo:
    def test_warm_run_is_byte_identical_and_reports_disk_loads(
        self, tmp_path
    ):
        spec = jittered_spec(count=10)
        serial = run_fleet(spec, "serial")
        cold = run_fleet(spec, "vector", memo_dir=tmp_path)
        warm_executor = VectorFleetExecutor(memo_dir=tmp_path)
        warm = run_fleet(spec, executor=warm_executor)
        assert aggregate_fingerprint(cold) == aggregate_fingerprint(serial)
        assert aggregate_fingerprint(warm) == aggregate_fingerprint(serial)
        assert warm.memo["disk_loads"] > 0
        assert warm.memo["hit_rate"] > cold.memo["hit_rate"]

    def test_corrupt_shard_degrades_to_cold(self, tmp_path):
        spec = uniform_spec(count=6)
        run_fleet(spec, "vector", memo_dir=tmp_path)
        shards = list(tmp_path.glob("memo-*.pkl"))
        assert shards, "cold run should have written a shard"
        for shard in shards:
            shard.write_bytes(b"\x80corrupt garbage")
        warm = run_fleet(spec, "vector", memo_dir=tmp_path)
        assert warm.memo["disk_loads"] == 0  # cold, not crashed
        serial = run_fleet(spec, "serial")
        assert aggregate_fingerprint(warm) == aggregate_fingerprint(serial)

    def test_schema_or_token_mismatch_loads_nothing(self, tmp_path):
        store = MemoStore(tmp_path)
        store.save("token-a", {"k": "v"})
        assert store.load("token-a") == {"k": "v"}
        assert store.load("token-b") == {}
        # A forged payload under the right digest but wrong schema.
        path = store.shard_path("token-a")
        path.write_bytes(
            pickle.dumps(
                {"schema": "other", "shard": "token-a", "entries": {"k": 1}}
            )
        )
        assert store.load("token-a") == {}
        assert MEMO_SCHEMA == "repro-memo-1"

    def test_memo_dir_requires_vector_executor(self):
        spec = uniform_spec(count=2)
        with pytest.raises(FleetError, match="vector"):
            run_fleet(spec, "serial", memo_dir="/tmp/nope")
        with pytest.raises(FleetError, match="vector"):
            run_fleet(spec, "sharded", supply_buckets=8)


class TestCheckpointFamilyGate:
    def test_cross_family_resume_with_matching_fingerprint(self, tmp_path):
        spec = mixed_spec()
        full = run_fleet(spec, "serial")
        path = tmp_path / "fleet.ckpt.json"
        partial = run_shard(spec.expand()[:3])
        FleetCheckpoint(
            checkpoint_fingerprint(spec),
            3,
            partial.to_dict(),
            executor_family="serial",
        ).save(path)
        resumed = run_fleet(spec, "vector", checkpoint_path=path)
        assert aggregate_fingerprint(resumed) == aggregate_fingerprint(full)
        # Every family that built the aggregate is reported.
        assert resumed.executor_used == "serial+vector"

    def test_legacy_checkpoint_without_parity_scheme_rejected(self, tmp_path):
        spec = mixed_spec()
        path = tmp_path / "fleet.ckpt.json"
        # A pre-parity-scheme checkpoint bound only the spec fingerprint.
        FleetCheckpoint(
            spec.fingerprint(), 3, FleetAggregator().to_dict()
        ).save(path)
        with pytest.raises(FleetError, match="parity scheme|different"):
            run_fleet(spec, "vector", checkpoint_path=path)

    def test_checkpoint_without_family_rejected(self, tmp_path):
        spec = mixed_spec()
        path = tmp_path / "fleet.ckpt.json"
        FleetCheckpoint(
            checkpoint_fingerprint(spec), 3, FleetAggregator().to_dict()
        ).save(path)
        with pytest.raises(FleetError, match="executor family"):
            run_fleet(spec, "serial", checkpoint_path=path)

    def test_vector_checkpoint_records_family(self, tmp_path):
        spec = uniform_spec(count=8)
        path = tmp_path / "fleet.ckpt.json"
        run_fleet(spec, "vector", checkpoint_path=path, checkpoint_every=3)
        checkpoint = FleetCheckpoint.load(path)
        assert checkpoint.executor_family == "vector"
        assert checkpoint.fingerprint == checkpoint_fingerprint(spec)
