"""Execution-timeline renderer tests."""

import pytest

from repro.core.pipeline import compile_source
from repro.eval.timeline import build_timeline, render_timeline
from repro.runtime.executor import Machine
from repro.runtime.observations import Trace
from repro.runtime.supply import ContinuousPower, FailurePoint, ScheduledFailures
from repro.sensors.environment import Environment

SRC = """\
inputs a, b;

fn main() {
  let consistent(1) x = input(a);
  work(50);
  let consistent(1) y = input(b);
  log(x, y);
}
"""


def trace_for(config: str, with_failure: bool):
    compiled = compile_source(SRC, config)
    env = Environment.constant_for(["a", "b"], 3)
    if with_failure:
        site = sorted(compiled.detector_plan().checks)[0]
        supply = ScheduledFailures([FailurePoint(chain=site)], off_cycles=500)
    else:
        supply = ContinuousPower()
    machine = Machine(compiled.module, env, supply, plan=compiled.detector_plan())
    result = machine.run()
    assert result.stats.completed
    return result.trace


class TestBuild:
    def test_tracks_have_requested_width(self):
        timeline = build_timeline(trace_for("ocelot", False), width=40)
        assert len(timeline.power) == 40
        assert len(timeline.region) == 40
        assert len(timeline.events) == 40

    def test_continuous_power_is_all_on(self):
        timeline = build_timeline(trace_for("ocelot", False), width=40)
        assert "." not in timeline.power

    def test_failure_produces_off_gap(self):
        timeline = build_timeline(trace_for("jit", True), width=60)
        assert "." in timeline.power
        # The reboot mark may be displaced by a same-column violation
        # (violations outrank reboots); one of the two must show.
        assert "R" in timeline.events or "V" in timeline.events

    def test_region_brackets_present(self):
        timeline = build_timeline(trace_for("ocelot", False), width=60)
        assert "[" in timeline.region
        assert "]" in timeline.region

    def test_inputs_and_outputs_marked(self):
        timeline = build_timeline(trace_for("ocelot", False), width=60)
        assert "I" in timeline.events
        assert "O" in timeline.events

    def test_violation_glyph_wins_collisions(self):
        timeline = build_timeline(trace_for("jit", True), width=10)
        # At width 10 many events collide; a violation must survive.
        assert "V" in timeline.events

    def test_empty_trace(self):
        timeline = build_timeline(Trace(), width=20)
        assert timeline.power == "." * 20

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            build_timeline(Trace(), width=0)


class TestRender:
    def test_render_contains_all_tracks_and_scale(self):
        text = render_timeline(trace_for("ocelot", True), width=50)
        assert "power   " in text
        assert "region  " in text
        assert "events  " in text
        assert "cycles/column" in text
