"""Property tests of the paper's central results.

**Theorem 1** (Section 5.3): programs passing the policy and region checks
satisfy all their policies.  Ocelot's pipeline produces programs that pass
the checks by construction, so for *any* annotated program and *any*
failure pattern, an Ocelot build must never violate freshness or temporal
consistency -- neither by the bit-vector detector nor by the formal trace
predicates of Definitions 2/3.

The JIT counterpart: there exist failure points that violate (that is what
Table 2 shows); here we only assert the detector and predicates agree.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import PipelineOptions, compile_source
from repro.runtime.executor import Machine, MachineConfig
from repro.runtime.properties import check_consistency, check_freshness
from repro.runtime.supply import FailurePoint, ScheduledFailures
from repro.sensors.environment import Environment, steps

from tests.strategies import program_sources


def build_env(channels, seed: int) -> Environment:
    """A stepping environment: every channel changes over time, so stale
    reads are observably different."""
    env = Environment()
    for idx, channel in enumerate(channels):
        env.bind(
            channel,
            steps(
                levels=[seed + idx, seed + idx + 40, seed + idx + 11],
                dwell=700 + 13 * idx,
            ),
        )
    return env


def run_with_failures(compiled, env, points, off_cycles=5000):
    supply = ScheduledFailures(points, off_cycles=off_cycles)
    machine = Machine(
        compiled.module,
        env,
        supply,
        plan=compiled.detector_plan(),
        config=MachineConfig(max_cycles=2_000_000),
    )
    result = machine.run()
    assert result.stats.completed, "activation did not complete"
    return result


class TestTheorem1:
    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_ocelot_builds_pass_checks(self, data):
        source = data.draw(program_sources())
        compiled = compile_source(source, "ocelot")
        assert compiled.check.ok, compiled.check.failures

    @given(data=st.data(), seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_ocelot_never_violates_under_injected_failures(self, data, seed):
        source = data.draw(program_sources())
        compiled = compile_source(source, "ocelot")
        env = build_env(compiled.module.channels, seed)
        plan = compiled.detector_plan()

        # Inject one failure at every detector check site, one run each --
        # the pathological points of Section 7.3.
        for site in sorted(plan.checks):
            result = run_with_failures(
                compiled, env, [FailurePoint(chain=site)]
            )
            assert result.stats.violations == 0, (site, source)
            assert check_freshness(result.trace) == [], (site, source)
            assert check_consistency(result.trace) == [], (site, source)

    @given(data=st.data(), seed=st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_ocelot_handles_simultaneous_failures(self, data, seed):
        source = data.draw(program_sources())
        compiled = compile_source(source, "ocelot")
        env = build_env(compiled.module.channels, seed)
        plan = compiled.detector_plan()
        points = [FailurePoint(chain=site) for site in sorted(plan.checks)]
        if not points:
            return
        result = run_with_failures(compiled, env, points)
        assert result.stats.violations == 0
        assert check_freshness(result.trace) == []
        assert check_consistency(result.trace) == []

    @given(data=st.data(), seed=st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_detector_and_predicates_agree_on_jit(self, data, seed):
        source = data.draw(program_sources())
        compiled = compile_source(
            source, "jit", options=PipelineOptions(strict=False)
        )
        env = build_env(compiled.module.channels, seed)
        plan = compiled.detector_plan()
        for site in sorted(plan.checks):
            supply = ScheduledFailures(
                [FailurePoint(chain=site)], off_cycles=5000
            )
            machine = Machine(compiled.module, env, supply, plan=plan)
            result = machine.run()
            if not result.stats.completed or not supply.all_fired:
                continue
            predicate = bool(
                check_freshness(result.trace)
                or check_consistency(result.trace)
            )
            detector = result.stats.violations > 0
            assert predicate == detector, (site, source)


class TestAtomicsBuildsAlsoEnforce:
    @given(data=st.data(), seed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_atomics_only_never_violates(self, data, seed):
        source = data.draw(program_sources())
        compiled = compile_source(source, "atomics")
        assert compiled.check.ok
        env = build_env(compiled.module.channels, seed)
        plan = compiled.detector_plan()
        points = [FailurePoint(chain=site) for site in sorted(plan.checks)]
        if not points:
            return
        result = run_with_failures(compiled, env, points)
        assert result.stats.violations == 0
