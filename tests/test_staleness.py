"""The static staleness-window analysis and its verdicts."""

from __future__ import annotations

import pytest

from repro.analysis.intervals import (
    NEVER,
    ZERO,
    CycleIntervalLattice,
    Interval,
)
from repro.analysis.provenance import Chain
from repro.analysis.specialize import (
    constant_channels,
    fold_expr,
    specialize_module,
)
from repro.analysis.staleness import (
    BOOT,
    VERDICT_DOOMED,
    VERDICT_ENV,
    VERDICT_SAFE,
    analyze_staleness,
    analyze_windows,
    probe_run,
)
from repro.core.pipeline import compile_source
from repro.ir.instructions import InstrId
from repro.lang import ast as lang_ast
from repro.runtime.detector import build_detector_plan
from repro.sensors.environment import Environment, constant
from repro.verify import VerifyBounds, verify_program

BOUNDS = VerifyBounds(
    max_activations=1, max_failures=1, max_cycles=100_000, max_states=50_000
)

#: One required input on every path, a cheap span: structurally SAFE
#: wherever regions make bits survive, ENV-DEPENDENT under bare JIT.
SRC_STRAIGHT = """\
inputs temp;

fn main() {
  let t = input(temp);
  Fresh(t);
  let u = t + 1;
  log(u);
}
"""

#: The required input executes on only one branch arm: fires even on the
#: failure-free run when the arm is not taken.
SRC_ONE_ARM = """\
inputs cond, temp;

fn main() {
  let t = 0;
  let c = input(cond);
  if c > 0 {
    t = input(temp);
  }
  Fresh(t);
  log(t);
}
"""

#: A long work span between input and use: the minimum input-to-use
#: distance exceeds the usable-energy window.
SRC_LONG_SPAN = """\
inputs temp;

fn main() {
  let t = input(temp);
  work(5000);
  Fresh(t);
  let u = t + 1;
  log(u);
}
"""

#: A loop between input and use (compiled with ``unroll_loops=False`` so
#: the CFG keeps the back edge): the upper window bound must widen to
#: infinity while the lower bound stays finite.
SRC_LOOP = """\
inputs temp;

fn main() {
  let t = input(temp);
  repeat 5 {
    work(10);
  }
  Fresh(t);
  let u = t + 1;
  log(u);
}
"""


def _env(compiled, value: int) -> Environment:
    env = Environment()
    for channel in compiled.module.channels:
        env.bind(channel, constant(value))
    return env


class TestInterval:
    def test_never_requires_both_none(self):
        with pytest.raises(ValueError):
            Interval(lo=None, hi=3)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Interval(lo=5, hi=2)

    def test_shift_moves_both_bounds(self):
        assert Interval(2, 7).shift(3, 4) == Interval(5, 11)

    def test_shift_unknown_cost_unbounds_hi(self):
        assert Interval(2, 7).shift(3, None) == Interval(5, None)

    def test_shift_of_never_is_never(self):
        assert NEVER.shift(10, 10) is NEVER

    def test_hull_takes_extremes(self):
        assert Interval(2, 5).hull(Interval(4, 9)) == Interval(2, 9)

    def test_hull_with_never_keeps_finite_lo(self):
        # NEVER = [inf, inf]: joining leaves the minimum but unbounds
        # the maximum.
        assert Interval(2, 5).hull(NEVER) == Interval(2, None)

    def test_render(self):
        assert Interval(3, None).render() == "[3, inf]"
        assert NEVER.render() == "[never]"


class TestLatticeWiden:
    def test_stable_entries_pass_through(self):
        lat = CycleIntervalLattice()
        chain = Chain.of((), InstrId("f", 1))
        fact = {chain: Interval(3, 9)}
        assert lat.widen(fact, dict(fact)) == fact

    def test_growing_hi_jumps_to_infinity(self):
        lat = CycleIntervalLattice()
        chain = Chain.of((), InstrId("f", 1))
        out = lat.widen({chain: Interval(3, 9)}, {chain: Interval(3, 12)})
        assert out[chain] == Interval(3, None)

    def test_shrinking_lo_jumps_to_zero(self):
        lat = CycleIntervalLattice()
        chain = Chain.of((), InstrId("f", 1))
        out = lat.widen({chain: Interval(5, 9)}, {chain: Interval(2, 9)})
        assert out[chain] == Interval(0, 9)

    def test_join_treats_missing_as_never(self):
        lat = CycleIntervalLattice()
        chain = Chain.of((), InstrId("f", 1))
        out = lat.join({chain: Interval(2, 4)}, {})
        assert out[chain] == Interval(2, None)


class TestWindows:
    def test_straight_line_is_exact(self):
        compiled = compile_source(SRC_STRAIGHT, "jit")
        plan = build_detector_plan(compiled.policies)
        result = analyze_windows(compiled.module, plan.bit_chains)
        (site,) = plan.checks
        (required,) = plan.checks_at(site)[0].required
        window = result.window(site, required)
        assert window.lo == window.hi  # single path, no joins
        assert window.lo > 0

    def test_boot_clock_present_everywhere(self):
        compiled = compile_source(SRC_STRAIGHT, "jit")
        plan = build_detector_plan(compiled.policies)
        result = analyze_windows(compiled.module, plan.bit_chains)
        (site,) = plan.checks
        assert not result.window(site, BOOT).never

    def test_loop_widens_hi_keeps_finite_lo(self):
        from repro.core.passes.base import PipelineOptions

        compiled = compile_source(
            SRC_LOOP, "jit", options=PipelineOptions(unroll_loops=False)
        )
        plan = build_detector_plan(compiled.policies)
        result = analyze_windows(compiled.module, plan.bit_chains)
        site = min(plan.checks)
        check = plan.checks_at(site)[0]
        temp_chain = min(check.required)
        window = result.window(site, temp_chain)
        assert window.lo is not None  # zero-trip path keeps a real minimum
        assert window.hi is None  # loop trips widen the maximum away

    def test_unanalyzed_site_reads_never(self):
        compiled = compile_source(SRC_STRAIGHT, "jit")
        plan = build_detector_plan(compiled.policies)
        result = analyze_windows(compiled.module, plan.bit_chains)
        ghost = Chain.of((), InstrId("nowhere", 99))
        assert result.window(ghost, BOOT).never


class TestProbe:
    def test_records_reached_sites_and_firings(self):
        compiled = compile_source(SRC_ONE_ARM, "jit")
        plan = build_detector_plan(compiled.policies)
        # cond = 0: the arm is skipped, the fresh check fires.
        result = probe_run(compiled, _env(compiled, 0), plan)
        assert result.completed
        assert result.executed
        assert result.fired

    def test_clean_program_fires_nothing(self):
        compiled = compile_source(SRC_STRAIGHT, "jit")
        plan = build_detector_plan(compiled.policies)
        result = probe_run(compiled, _env(compiled, 1), plan)
        assert result.completed
        assert not result.fired


class TestVerdicts:
    def test_structural_safe_under_regions(self):
        compiled = compile_source(SRC_STRAIGHT, "ocelot")
        report = analyze_staleness(compiled, [("one", _env(compiled, 1))])
        assert report.counts() == {
            VERDICT_SAFE: 1,
            VERDICT_DOOMED: 0,
            VERDICT_ENV: 0,
        }
        (verdict,) = report.verdicts
        assert "must-available" in verdict.reason
        assert verdict.level == "info"

    def test_env_dependent_under_jit(self):
        compiled = compile_source(SRC_STRAIGHT, "jit")
        report = analyze_staleness(compiled, [("one", _env(compiled, 1))])
        (verdict,) = report.verdicts
        assert verdict.verdict == VERDICT_ENV
        assert verdict.level == "warning"
        assert verdict.windows  # reports the cycle windows

    def test_env_available_safe(self):
        # The branch folds under a constant environment, putting the
        # required input on every feasible path.
        compiled = compile_source(SRC_ONE_ARM, "ocelot")
        report = analyze_staleness(compiled, [("one", _env(compiled, 1))])
        (verdict,) = report.verdicts
        assert verdict.verdict == VERDICT_SAFE
        assert verdict.safe_envs == ("one",)
        assert "every registered environment" in verdict.reason

    def test_doomed_fires_without_failure(self):
        compiled = compile_source(SRC_ONE_ARM, "jit")
        report = analyze_staleness(compiled, [("zero", _env(compiled, 0))])
        (verdict,) = report.verdicts
        assert verdict.verdict == VERDICT_DOOMED
        assert "without power failures" in verdict.reason
        assert verdict.witness
        assert verdict.level == "error"

    def test_doomed_stale_window(self):
        compiled = compile_source(SRC_LONG_SPAN, "jit")
        report = analyze_staleness(compiled, [("zero", _env(compiled, 0))])
        doomed = report.by_verdict(VERDICT_DOOMED)
        assert doomed, report.render_text()
        verdict = doomed[0]
        assert verdict.threshold is not None
        assert verdict.threshold > report.window_cycles
        assert "usable-energy window" in verdict.reason

    def test_window_override_flips_stale_verdict(self):
        compiled = compile_source(SRC_LONG_SPAN, "jit")
        generous = analyze_staleness(
            compiled, [("zero", _env(compiled, 0))], window=1_000_000
        )
        assert not generous.by_verdict(VERDICT_DOOMED)

    def test_consistent_fixit_names_dominator_block(self):
        src = """\
inputs a, b;

fn main() {
  let consistent(1) x = input(a);
  work(40);
  let consistent(1) y = input(b);
  Consistent(y, 1);
  log(x + y);
}
"""
        compiled = compile_source(src, "jit")
        report = analyze_staleness(compiled, [("one", _env(compiled, 1))])
        consistent = [v for v in report.verdicts if v.kind == "consistent"]
        assert consistent
        assert any(v.fixits for v in consistent)
        assert any("atomic region" in f for v in consistent for f in v.fixits)


class TestReport:
    def test_exit_codes_gate_by_severity(self):
        compiled = compile_source(SRC_ONE_ARM, "jit")
        doomed = analyze_staleness(compiled, [("zero", _env(compiled, 0))])
        assert doomed.exit_code("error") == 1
        assert doomed.exit_code("never") == 0
        clean = analyze_staleness(
            compile_source(SRC_STRAIGHT, "ocelot"),
            [("one", _env(compiled, 1))],
        )
        assert clean.exit_code("error") == 0
        assert clean.exit_code("warning") == 0
        warn = analyze_staleness(
            compile_source(SRC_STRAIGHT, "jit"),
            [("one", _env(compiled, 1))],
        )
        assert warn.exit_code("error") == 0
        assert warn.exit_code("warning") == 1

    def test_diagnostics_carry_lint_stage_and_levels(self):
        from repro.core.passes.base import DIAG_ERROR

        compiled = compile_source(SRC_ONE_ARM, "jit")
        report = analyze_staleness(compiled, [("zero", _env(compiled, 0))])
        diags = report.diagnostics()
        assert diags
        assert all(d.stage == "lint" for d in diags)
        assert any(d.level == DIAG_ERROR for d in diags)

    def test_to_dict_roundtrips_through_json(self):
        import json

        compiled = compile_source(SRC_LONG_SPAN, "jit")
        report = analyze_staleness(compiled, [("zero", _env(compiled, 0))])
        data = json.loads(json.dumps(report.to_dict()))
        assert data["config"] == "jit"
        assert data["summary"] == report.counts()
        assert len(data["verdicts"]) == len(report.verdicts)

    def test_relevant_bits_excludes_safe_only_bits(self):
        compiled = compile_source(SRC_STRAIGHT, "ocelot")
        report = analyze_staleness(compiled, [("one", _env(compiled, 1))])
        assert report.counts()[VERDICT_SAFE] == len(report.verdicts)
        assert report.relevant_bits() == frozenset()

    def test_doomed_uids_name_trigger_sites(self):
        compiled = compile_source(SRC_ONE_ARM, "jit")
        report = analyze_staleness(compiled, [("zero", _env(compiled, 0))])
        (verdict,) = report.by_verdict(VERDICT_DOOMED)
        assert report.doomed_uids() == frozenset({verdict.site.op})


class TestSpecialize:
    def test_constant_channels_need_period_one(self):
        env = Environment()
        env.bind("a", constant(7))
        assert constant_channels(env) == {"a": 7}

    def test_fold_expr_mirrors_machine_ops(self):
        expr = lang_ast.Binary(
            op="+",
            lhs=lang_ast.IntLit(value=2),
            rhs=lang_ast.Var(name="x"),
        )
        assert fold_expr(expr, {"x": 3}) == 5
        assert fold_expr(expr, {}) is None

    def test_noop_when_no_constant_channel(self):
        compiled = compile_source(SRC_ONE_ARM, "jit")
        env = Environment()  # nothing bound
        assert specialize_module(compiled.module, env) is compiled.module

    def test_folded_branch_keeps_uid(self):
        from repro.ir import instructions as ir

        compiled = compile_source(SRC_ONE_ARM, "jit")
        module = specialize_module(compiled.module, _env(compiled, 1))
        assert module is not compiled.module
        original = compiled.module.function("main")
        specialized = module.function("main")
        folded = [
            (name, block.terminator)
            for name, block in specialized.blocks.items()
            if isinstance(block.terminator, ir.Jump)
            and isinstance(original.blocks[name].terminator, ir.Branch)
        ]
        assert folded
        for name, terminator in folded:
            assert terminator.uid == original.blocks[name].terminator.uid


class TestVerifierGuidance:
    def test_seeded_search_reaches_same_verdict_faster_or_equal(self):
        compiled = compile_source(SRC_ONE_ARM, "jit")
        env = _env(compiled, 0)
        report = analyze_staleness(compiled, [("zero", env)])
        plan = build_detector_plan(compiled.policies)
        plain = verify_program(
            compiled, env, bounds=BOUNDS, plan=plan, minimize=False
        )
        guided = verify_program(
            compiled,
            env,
            bounds=BOUNDS,
            plan=plan,
            minimize=False,
            seed_uids=report.doomed_uids(),
            relevant_bits=report.relevant_bits(),
        )
        assert guided.kind == plain.kind
        assert guided.stats.explored <= plain.stats.explored

    def test_relevant_bits_pruning_preserves_proof(self):
        compiled = compile_source(SRC_STRAIGHT, "ocelot")
        env = _env(compiled, 1)
        report = analyze_staleness(compiled, [("one", env)])
        plain = verify_program(compiled, env, bounds=BOUNDS, minimize=False)
        guided = verify_program(
            compiled,
            env,
            bounds=BOUNDS,
            minimize=False,
            seed_uids=report.doomed_uids(),
            relevant_bits=report.relevant_bits(),
        )
        assert plain.kind == "proof"
        assert guided.kind == "proof"
        assert guided.stats.explored <= plain.stats.explored
