"""Energy substrate tests: capacitor, harvesters, cost model."""

import pytest

from repro.energy.capacitor import Capacitor, EnergyError
from repro.energy.costs import CostModel
from repro.energy.harvester import ConstantHarvester, NoisyHarvester, TraceHarvester
from repro.ir import instructions as ir
from repro.lang import ast


class TestCapacitor:
    def test_starts_full(self):
        cap = Capacitor(1000, 200)
        assert cap.level == 1000
        assert cap.usable == 800

    def test_drain_trips_at_threshold(self):
        cap = Capacitor(1000, 200)
        assert not cap.drain(799)
        assert cap.drain(1)  # exactly at threshold trips

    def test_reserve_accounting(self):
        cap = Capacitor(1000, 200)
        cap.drain(800)
        cap.drain_reserve(150)
        assert cap.level == 50

    def test_reserve_exhaustion_raises(self):
        cap = Capacitor(1000, 200)
        cap.drain(800)
        with pytest.raises(EnergyError):
            cap.drain_reserve(300)

    def test_refill_returns_deficit(self):
        cap = Capacitor(1000, 200)
        cap.drain(600)
        assert cap.refill() == 600
        assert cap.level == 1000

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            Capacitor(100, 100)
        with pytest.raises(ValueError):
            Capacitor(100, -1)

    def test_negative_drain_rejected(self):
        with pytest.raises(ValueError):
            Capacitor(100, 10).drain(-5)


class TestHarvesters:
    def test_constant_rate(self):
        h = ConstantHarvester(rate_per_kilocycle=500)
        assert h.off_cycles(500) == 1000

    def test_constant_minimum_one(self):
        h = ConstantHarvester(rate_per_kilocycle=10**9)
        assert h.off_cycles(1) >= 1

    def test_noisy_is_deterministic_per_seed(self):
        a = NoisyHarvester(300, seed=5)
        b = NoisyHarvester(300, seed=5)
        assert [a.off_cycles(1000) for _ in range(5)] == [
            b.off_cycles(1000) for _ in range(5)
        ]

    def test_noisy_differs_across_seeds(self):
        a = [NoisyHarvester(300, seed=1).off_cycles(1000) for _ in range(4)]
        b = [NoisyHarvester(300, seed=2).off_cycles(1000) for _ in range(4)]
        assert a != b

    def test_noisy_spread_bounds(self):
        h = NoisyHarvester(1000, seed=3, spread=2.0)
        base = 1000  # deficit 1000 at rate 1000/kc -> nominal 1000 cycles
        for _ in range(50):
            off = h.off_cycles(base)
            assert base / 2.5 <= off <= base * 2.5

    def test_trace_harvester_replays(self):
        h = TraceHarvester([100, 200, 300])
        assert [h.off_cycles(1) for _ in range(4)] == [100, 200, 300, 100]

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            ConstantHarvester(0).off_cycles(10)
        with pytest.raises(ValueError):
            NoisyHarvester(0)
        with pytest.raises(ValueError):
            NoisyHarvester(10, spread=0.5)
        with pytest.raises(ValueError):
            TraceHarvester([]).off_cycles(1)

    def test_noisy_spawn_derives_fresh_stream(self):
        proto = NoisyHarvester(300, seed=1, spread=2.0)
        a = proto.spawn(5)
        b = proto.spawn(5)
        c = proto.spawn(6)
        seq = [a.off_cycles(100) for _ in range(5)]
        assert seq == [b.off_cycles(100) for _ in range(5)]
        assert seq != [c.off_cycles(100) for _ in range(5)]
        assert a.rate_per_kilocycle == 300 and a.spread == 2.0

    def test_noisy_reseed_replays(self):
        h = NoisyHarvester(300, seed=1)
        first = [h.off_cycles(100) for _ in range(5)]
        h.reseed(1)
        assert [h.off_cycles(100) for _ in range(5)] == first

    def test_trace_spawn_rewinds(self):
        proto = TraceHarvester([10, 20])
        proto.off_cycles(1)
        child = proto.spawn(0)
        assert child.off_cycles(1) == 10

    def test_derive_seed_is_stable_and_distinct(self):
        from repro.energy.seeds import derive_seed

        assert derive_seed(1, "tire", 0) == derive_seed(1, "tire", 0)
        assert derive_seed(1, "tire", 0) != derive_seed(1, "tire", 1)
        assert derive_seed(1, "tire", 0) != derive_seed(2, "tire", 0)
        # Pinned value: this must never drift, or every checkpointed and
        # recorded fleet run silently changes meaning.  (Regenerated once
        # when part encoding became length-prefixed -- see CHANGES.md.)
        assert derive_seed(0, "x") == 0xEA589E3A119E865F

    def test_derive_seed_part_boundaries_cannot_collide(self):
        from repro.energy.seeds import derive_seed

        # The historical ":"-join encoding made all of these one stream.
        assert derive_seed("a:b") != derive_seed("a", "b")
        assert derive_seed("ab") != derive_seed("a", "b")
        assert derive_seed("a", "b:c") != derive_seed("a:b", "c")
        assert derive_seed("a", "") != derive_seed("a")


class TestCostModel:
    def test_input_default_and_override(self):
        costs = CostModel(input_costs={"photo": 120})
        photo = ir.InputInstr(dest="%t", channel="photo")
        temp = ir.InputInstr(dest="%t", channel="temp")
        assert costs.instr_cycles(photo) == 120
        assert costs.instr_cycles(temp) == costs.input_op

    def test_work_uses_value(self):
        costs = CostModel()
        work = ir.WorkInstr(cycles=ast.IntLit(value=77))
        assert costs.instr_cycles(work, work_value=77) == 77

    def test_negative_work_clamped(self):
        costs = CostModel()
        work = ir.WorkInstr(cycles=ast.IntLit(value=-5))
        assert costs.instr_cycles(work, work_value=-5) == 0

    def test_region_entry_scales_with_omega(self):
        costs = CostModel()
        small = costs.region_entry_cycles(10, 1)
        big = costs.region_entry_cycles(10, 100)
        assert big - small == costs.region_per_nv_word * 99

    def test_checkpoint_scales_with_stack(self):
        costs = CostModel()
        assert costs.checkpoint_cycles(50) > costs.checkpoint_cycles(5)

    def test_annotations_are_free(self):
        costs = CostModel()
        annot = ir.AnnotInstr(kind="fresh", var="x")
        assert costs.instr_cycles(annot) == 0

    def test_region_markers_charged_separately(self):
        costs = CostModel()
        start = ir.AtomicStart(region="r")
        assert costs.instr_cycles(start) == 0
