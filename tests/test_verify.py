"""The bounded model checker: snapshots, verdicts, pruning, artifacts.

The verifier's claims are cross-validated here against the production
runtime: snapshots restore bit-exactly on both engines, proofs and
counterexamples match the CLI exit-code contract, counterexample
schedules replay to the same violation through the stock
:class:`ScheduledFailures` supply on both engines, minimized schedules
are 1-minimal, and analysis-guided pruning never changes a verdict while
exploring strictly fewer states.
"""

from __future__ import annotations

import json

import pytest

from repro.apps import BENCHMARKS
from repro.cli import main
from repro.core.pipeline import compile_source
from repro.runtime import observations as obs
from repro.runtime.engine import ENGINE_FAST, ENGINE_REFERENCE, create_machine
from repro.runtime.snapshot import begin_activation, capture_machine, restore_machine
from repro.sensors.environment import Environment
from repro.verify import (
    VERDICT_BOUND,
    VERDICT_COUNTEREXAMPLE,
    VERDICT_PROOF,
    FixedOffSupply,
    Schedule,
    VerifyBounds,
    fast_block_namer,
    replay_schedule,
    state_digest,
    verify_program,
)

ENGINES = (ENGINE_FAST, ENGINE_REFERENCE)
SMALL = VerifyBounds(max_activations=1, max_failures=1, max_cycles=200_000)


def _build(config: str):
    compiled = compile_source(BENCHMARKS["tire"].source, config=config)
    env = Environment.constant_for(compiled.module.channels, 0)
    return compiled, env


def _machine(compiled, env, engine):
    return create_machine(engine, compiled, env, FixedOffSupply())


def _digest_of(machine, engine):
    namer = None if engine == ENGINE_REFERENCE else fast_block_namer(machine._code)
    return state_digest(machine, 0, namer)


def _run_out(machine):
    """Step to completion, return (digest-relevant outcome)."""
    while not machine._done:
        machine.step()
    return (
        machine.tau,
        machine.stats.cycles_on,
        [(v.pid, v.kind, v.uid, v.tau) for v in machine.trace.violations],
    )


class TestSnapshotRoundtrip:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("config", ["ocelot", "jit", "atomics"])
    def test_restore_is_bit_exact(self, engine, config):
        """Capture mid-run, finish, restore, finish again: same outcome."""
        compiled, env = _build(config)
        machine = _machine(compiled, env, engine)
        for _ in range(40):
            machine.step()
        snap = capture_machine(machine)
        mid_digest = _digest_of(machine, engine)
        first = _run_out(machine)
        restore_machine(machine, snap)
        assert _digest_of(machine, engine) == mid_digest
        assert _run_out(machine) == first

    @pytest.mark.parametrize("engine", ENGINES)
    def test_restore_survives_forced_failure(self, engine):
        """A forced failure on the restored branch does not leak into a
        second restore of the same snapshot."""
        compiled, env = _build("jit")
        machine = _machine(compiled, env, engine)
        for _ in range(25):
            machine.step()
        snap = capture_machine(machine)
        machine.force_power_failure()
        failed = _run_out(machine)
        restore_machine(machine, snap)
        machine.force_power_failure()
        assert _run_out(machine) == failed
        restore_machine(machine, snap)
        clean = _run_out(machine)
        assert clean[0] != failed[0]  # off-time moved the clock

    @pytest.mark.parametrize("engine", ENGINES)
    def test_begin_activation_matches_fresh_machine(self, engine):
        """begin_activation == building a new machine over the same NV."""
        compiled, env = _build("ocelot")
        machine = _machine(compiled, env, engine)
        _run_out(machine)
        nv = machine.nv
        tau = machine.tau
        fresh = create_machine(
            engine, compiled, env, FixedOffSupply(), nv=nv, start_tau=tau
        )
        begin_activation(machine, trace=obs.Trace())
        assert _digest_of(machine, engine) == _digest_of(fresh, engine)


class TestVerdicts:
    def test_ocelot_proof(self):
        compiled, env = _build("ocelot")
        verdict = verify_program(compiled, env, SMALL)
        assert verdict.kind == VERDICT_PROOF
        assert verdict.exit_code == 0
        assert verdict.counterexample is None
        assert verdict.stats.explored > 1
        assert "proof" in verdict.certificate()

    def test_jit_counterexample_replays_on_both_engines(self):
        compiled, env = _build("jit")
        verdict = verify_program(compiled, env, SMALL)
        assert verdict.kind == VERDICT_COUNTEREXAMPLE
        assert verdict.exit_code == 1
        schedule = verdict.counterexample
        assert schedule is not None and schedule.points
        outcomes = []
        for engine in ENGINES:
            result = replay_schedule(
                compiled, env, schedule, engine=engine, stop_at_violation=False
            )
            assert result.violating and result.all_fired
            outcomes.append(
                (
                    [(v.pid, v.kind, v.uid, v.tau) for v in result.violations],
                    result.final_tau,
                )
            )
        assert outcomes[0] == outcomes[1]
        pid, kind, uid = verdict.violation
        first = outcomes[0][0][0]
        assert (first[0], first[1], first[2]) == (pid, kind, uid)

    def test_counterexample_is_one_minimal(self):
        compiled, env = _build("jit")
        verdict = verify_program(
            compiled, env, VerifyBounds(max_failures=2, max_cycles=200_000)
        )
        schedule = verdict.counterexample
        assert schedule is not None
        for index in range(len(schedule.points)):
            sub = schedule.with_points(
                schedule.points[:index] + schedule.points[index + 1 :]
            )
            assert not replay_schedule(compiled, env, sub).violating

    def test_engines_agree_on_verdict(self):
        for config in ("ocelot", "jit"):
            compiled, env = _build(config)
            verdicts = [
                verify_program(compiled, env, SMALL, engine=e) for e in ENGINES
            ]
            assert verdicts[0].kind == verdicts[1].kind
            assert verdicts[0].violation == verdicts[1].violation
            assert verdicts[0].stats.explored == verdicts[1].stats.explored

    def test_state_cap_degrades_to_bound_exhausted(self):
        compiled, env = _build("ocelot")
        verdict = verify_program(
            compiled, env, VerifyBounds(max_failures=1, max_states=1)
        )
        assert verdict.kind == VERDICT_BOUND
        assert verdict.exit_code == 2
        assert verdict.stats.truncated > 0


class TestPruning:
    @pytest.mark.parametrize("fails", [1, 2])
    def test_prune_parity_and_strict_savings(self, fails):
        compiled, env = _build("ocelot")
        bounds = VerifyBounds(max_failures=fails, max_cycles=200_000)
        pruned = verify_program(compiled, env, bounds, prune=True)
        full = verify_program(compiled, env, bounds, prune=False)
        assert pruned.kind == full.kind == VERDICT_PROOF
        assert pruned.stats.explored < full.stats.explored
        assert pruned.stats.pruned > 0

    def test_dedup_collapses_second_order_forks(self):
        compiled, env = _build("ocelot")
        verdict = verify_program(
            compiled, env, VerifyBounds(max_failures=2, max_cycles=200_000)
        )
        assert verdict.stats.deduped > 0

    def test_prune_disabled_under_time_varying_env(self):
        compiled, _ = _build("ocelot")
        from repro.sensors.environment import steps

        env = Environment(
            {ch: steps([0, 1], 500) for ch in compiled.module.channels}
        )
        verdict = verify_program(compiled, env, SMALL, prune=True)
        assert not verdict.pruning
        assert verdict.stats.pruned == 0 and verdict.stats.pruned_noop == 0


class TestCli:
    def test_verify_proof_exit_zero(self, capsys):
        code = main(
            ["verify", "tire", "--config", "ocelot", "--max-failures", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict     : proof" in out

    def test_verify_counterexample_exit_one(self, capsys, tmp_path):
        cex = tmp_path / "cex.json"
        graph = tmp_path / "graph.json"
        code = main(
            [
                "verify",
                "tire",
                "--config",
                "jit",
                "--max-failures",
                "1",
                "--schedule-out",
                str(cex),
                "--emit-graph",
                str(graph),
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "counterexample" in out and "fail before" in out

        schedule = Schedule.from_json(cex.read_text())
        assert schedule.target == "tire" and schedule.config == "jit"

        doc = json.loads(graph.read_text())
        assert doc["nodes"] and doc["edges"] and "stats" in doc
        ids = {node["id"] for node in doc["nodes"]}
        for edge in doc["edges"]:
            assert edge["parent"] in ids and edge["child"] in ids

    def test_verify_bound_exhausted_exit_two(self, capsys):
        code = main(
            ["verify", "tire", "--config", "ocelot", "--max-states", "1"]
        )
        assert code == 2
        assert "bound-exhausted" in capsys.readouterr().out

    def test_run_replays_emitted_schedule(self, capsys, tmp_path):
        cex = tmp_path / "cex.json"
        assert (
            main(
                [
                    "verify", "tire", "--config", "jit",
                    "--max-failures", "1", "--schedule-out", str(cex),
                ]
            )
            == 1
        )
        capsys.readouterr()
        outputs = []
        for engine in ENGINES:
            code = main(
                [
                    "run", "tire", "--config", "jit",
                    "--schedule", str(cex), "--engine", engine,
                ]
            )
            assert code == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]
        assert "violations  : " in outputs[0]
        assert "fresh" in outputs[0]

    def test_availability_artifact(self, capsys):
        code = main(
            ["build", "tire", "--config", "ocelot", "--emit", "availability"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "resume points:" in out and "must-available" in out
