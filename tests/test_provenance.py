"""Provenance chain tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.provenance import Chain, common_context, representative_op
from repro.ir.instructions import InstrId


def mk(*pairs) -> Chain:
    return Chain(ids=tuple(InstrId(f, l) for f, l in pairs))


class TestChainBasics:
    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            Chain(ids=())

    def test_op_and_context(self):
        chain = mk(("main", 1), ("get", 3))
        assert chain.op == InstrId("get", 3)
        assert chain.context == (InstrId("main", 1),)

    def test_of_builds_from_context(self):
        context = (InstrId("main", 1),)
        chain = Chain.of(context, InstrId("get", 3))
        assert chain == mk(("main", 1), ("get", 3))

    def test_extends(self):
        chain = mk(("main", 1), ("confirm", 2), ("pres", 1))
        assert chain.extends(())
        assert chain.extends((InstrId("main", 1),))
        assert not chain.extends((InstrId("main", 9),))

    def test_ordering_is_total(self):
        a = mk(("main", 1), ("x", 1))
        b = mk(("main", 2))
        assert sorted([b, a]) == sorted([a, b])

    def test_str_form(self):
        assert str(mk(("main", 1), ("get", 3))) == "(main, 1)::(get, 3)"


class TestCommonContext:
    def test_figure6_example(self):
        # (app,1)::(confirm,2)::(pres,1)::(sense,0) and
        # (app,1)::(confirm,3)::(pres,1)::(sense,0) share (app,1): the
        # candidate is confirm.
        a = mk(("app", 1), ("confirm", 2), ("pres", 1), ("sense", 0))
        b = mk(("app", 1), ("confirm", 3), ("pres", 1), ("sense", 0))
        assert common_context([a, b]) == (InstrId("app", 1),)

    def test_identical_chains_stop_before_op(self):
        a = mk(("main", 1), ("get", 3))
        assert common_context([a, a]) == (InstrId("main", 1),)

    def test_disjoint_chains_give_root(self):
        a = mk(("main", 1), ("f", 1))
        b = mk(("main", 2), ("g", 1))
        assert common_context([a, b]) == ()

    def test_single_op_in_main(self):
        assert common_context([mk(("main", 4))]) == ()

    def test_empty_list(self):
        assert common_context([]) == ()

    @given(
        st.lists(
            st.lists(
                st.tuples(st.sampled_from("fgh"), st.integers(1, 3)),
                min_size=1,
                max_size=4,
            ),
            min_size=1,
            max_size=4,
        )
    )
    def test_result_is_prefix_of_every_chain(self, raw):
        chains = [mk(*pairs) for pairs in raw]
        prefix = common_context(chains)
        for chain in chains:
            assert chain.extends(prefix)
            assert len(prefix) < len(chain)  # never swallows the op


class TestRepresentativeOp:
    def test_direct_op(self):
        chain = mk(("main", 4))
        assert representative_op(chain, ()) == InstrId("main", 4)

    def test_hoisted_to_call_site(self):
        chain = mk(("main", 1), ("get", 3))
        assert representative_op(chain, ()) == InstrId("main", 1)

    def test_within_context(self):
        chain = mk(("app", 1), ("confirm", 2), ("pres", 1))
        ctx = (InstrId("app", 1),)
        assert representative_op(chain, ctx) == InstrId("confirm", 2)

    def test_wrong_context_raises(self):
        chain = mk(("main", 1), ("get", 3))
        with pytest.raises(ValueError):
            representative_op(chain, (InstrId("main", 9),))
