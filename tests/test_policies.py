"""Policy construction tests (PD / PM, Section 5.1)."""

from repro.analysis.policies import (
    PolicyMap,
    build_policies,
    policy_channels,
)
from repro.analysis.taint import analyze_module
from repro.ir.lowering import lower_program
from repro.lang.parser import parse_program


def policies_of(source: str):
    module = lower_program(parse_program(source))
    taint = analyze_module(module)
    return module, taint, build_policies(taint)


class TestFreshPolicies:
    def test_one_policy_per_static_annotation(self):
        module, taint, pd = policies_of(
            "inputs ch;\n"
            "fn main() { let x = input(ch); Fresh(x); "
            "let y = input(ch); Fresh(y); log(x); log(y); }"
        )
        assert len(pd.fresh_policies()) == 2

    def test_unrolled_annotation_makes_distinct_policies(self):
        module, taint, pd = policies_of(
            "inputs ch;\n"
            "fn main() { repeat 3 { let x = input(ch); Fresh(x); log(x); } }"
        )
        assert len(pd.fresh_policies()) == 3

    def test_policy_records_decl_inputs_uses(self):
        module, taint, pd = policies_of(
            "inputs ch;\n"
            "fn main() { let x = input(ch); Fresh(x); if x > 2 { alarm(); } }"
        )
        (policy,) = pd.fresh_policies()
        assert policy.decl_chains
        assert policy.inputs
        assert policy.uses
        assert policy.ops() >= policy.inputs | policy.uses

    def test_trivial_when_no_inputs(self):
        module, taint, pd = policies_of(
            "fn main() { let x = 3; Fresh(x); log(x); }"
        )
        (policy,) = pd.fresh_policies()
        assert policy.is_trivial()


class TestConsistentPolicies:
    def test_members_merge_by_set_id(self):
        module, taint, pd = policies_of(
            "inputs a, b;\n"
            "fn main() { let consistent(1) x = input(a); "
            "let consistent(1) y = input(b); log(x, y); }"
        )
        (policy,) = pd.consistent_policies()
        assert len(policy.decls) == 2
        assert len(policy.inputs) == 2
        assert not policy.is_trivial()

    def test_distinct_ids_distinct_policies(self):
        module, taint, pd = policies_of(
            "inputs a, b;\n"
            "fn main() { let consistent(1) x = input(a); "
            "let consistent(2) y = input(b); log(x, y); }"
        )
        assert len(pd.consistent_policies()) == 2
        assert all(p.is_trivial() for p in pd.consistent_policies())

    def test_per_decl_inputs_tracked(self):
        module, taint, pd = policies_of(
            "inputs a, b;\n"
            "fn main() { let consistent(1) x = input(a); "
            "let consistent(1) y = input(b); log(x, y); }"
        )
        (policy,) = pd.consistent_policies()
        per_decl = [sorted(v)[0] for v in policy.decl_inputs.values()]
        assert len(per_decl) == 2
        assert per_decl[0] != per_decl[1]

    def test_unrolled_loop_single_policy_many_members(self):
        module, taint, pd = policies_of(
            "inputs ch;\n"
            "fn main() { let s = 0; repeat 4 { "
            "let consistent(1) r = input(ch); s = s + r; } log(s); }"
        )
        (policy,) = pd.consistent_policies()
        assert len(policy.decls) == 4
        assert len(policy.inputs) == 4


class TestPolicyChannels:
    def test_channels_resolved(self):
        module, taint, pd = policies_of(
            "inputs pres, hum;\n"
            "fn main() { let consistent(1) y = input(pres); "
            "let consistent(1) z = input(hum); log(y, z); }"
        )
        (policy,) = pd.consistent_policies()
        assert policy_channels(taint, policy) == ["hum", "pres"]


class TestPolicyMap:
    def test_round_trips(self):
        pm = PolicyMap()
        pm.assign("r1", "fresh@main:4")
        pm.assign("r1", "consistent#1")
        assert pm.policies_of("r1") == ["fresh@main:4", "consistent#1"]
        assert pm.region_of("consistent#1") == "r1"
        assert pm.region_of("nope") is None
