"""Semantic validation tests."""

import pytest

from repro.lang.errors import SemanticError
from repro.lang.parser import parse_program
from repro.lang.validate import validate_program


def check(source: str, require_main: bool = True):
    return validate_program(parse_program(source), require_main=require_main)


class TestWellFormed:
    def test_minimal_program(self):
        info = check("fn main() { skip; }")
        assert "main" in info.functions

    def test_call_graph_collected(self):
        info = check("fn a() { skip; }\nfn main() { a(); }")
        assert info.call_graph["main"] == {"a"}

    def test_reachable_from(self):
        info = check("fn a() { skip; }\nfn b() { a(); }\nfn main() { b(); }")
        assert info.reachable_from("main") == {"main", "b", "a"}

    def test_let_scopes_to_rest_of_body(self):
        check("fn main() { let x = 1; let y = x + 1; log(y); }")

    def test_atomic_is_scope_transparent(self):
        check("fn main() { atomic { let x = 1; } log(x); }")

    def test_if_scopes_are_isolated(self):
        with pytest.raises(SemanticError):
            check("fn main() { if 1 < 2 { let x = 1; } log(x); }")


class TestErrors:
    def test_missing_main(self):
        with pytest.raises(SemanticError, match="main"):
            check("fn f() { skip; }")

    def test_main_with_params_rejected(self):
        with pytest.raises(SemanticError):
            check("fn main(x) { skip; }")

    def test_undefined_variable(self):
        with pytest.raises(SemanticError, match="undefined variable"):
            check("fn main() { log(x); }")

    def test_assignment_to_undefined(self):
        with pytest.raises(SemanticError, match="assignment to undefined"):
            check("fn main() { x = 1; }")

    def test_assignment_to_global_ok(self):
        check("nonvolatile g = 0;\nfn main() { g = 1; }")

    def test_rebinding_ref_param_rejected(self):
        with pytest.raises(SemanticError, match="reference parameter"):
            check("fn f(&p) { p = 3; }\nfn main() { let x = 1; f(&x); }")

    def test_store_through_non_ref_rejected(self):
        with pytest.raises(SemanticError):
            check("fn f(p) { *p = 3; }\nfn main() { f(1); }")

    def test_undeclared_channel(self):
        with pytest.raises(SemanticError, match="channel"):
            check("fn main() { let x = input(nope); }")

    def test_undeclared_array(self):
        with pytest.raises(SemanticError, match="array"):
            check("fn main() { let x = a[0]; }")

    def test_call_unknown_function(self):
        with pytest.raises(SemanticError, match="undefined function"):
            check("fn main() { nothere(); }")

    def test_arity_mismatch(self):
        with pytest.raises(SemanticError, match="argument"):
            check("fn f(a) { skip; }\nfn main() { f(); }")

    def test_ref_argument_to_value_param(self):
        with pytest.raises(SemanticError):
            check("fn f(a) { skip; }\nfn main() { let x = 1; f(&x); }")

    def test_value_argument_to_ref_param(self):
        with pytest.raises(SemanticError):
            check("fn f(&a) { skip; }\nfn main() { f(1); }")

    def test_ref_to_global_rejected(self):
        with pytest.raises(SemanticError, match="undefined local"):
            check("nonvolatile g = 0;\nfn f(&a) { skip; }\nfn main() { f(&g); }")

    def test_annotation_on_undefined_var(self):
        with pytest.raises(SemanticError, match="annotation"):
            check("fn main() { Fresh(x); }")

    def test_recursion_rejected(self):
        with pytest.raises(SemanticError, match="recursive"):
            check("fn f() { f(); }\nfn main() { f(); }")

    def test_mutual_recursion_rejected(self):
        with pytest.raises(SemanticError, match="recursive"):
            check("fn a() { b(); }\nfn b() { a(); }\nfn main() { a(); }")

    def test_duplicate_parameter(self):
        with pytest.raises(SemanticError, match="duplicate parameter"):
            check("fn f(a, a) { skip; }\nfn main() { f(1, 2); }")

    def test_duplicate_channel(self):
        with pytest.raises(SemanticError, match="duplicate input channel"):
            check("inputs a, a;\nfn main() { skip; }")

    def test_builtin_arity(self):
        with pytest.raises(SemanticError):
            check("fn main() { let x = abs(1, 2); }")

    def test_output_builtin_needs_args(self):
        with pytest.raises(SemanticError):
            check("fn main() { log(); }")

    def test_effect_builtin_in_expression_rejected(self):
        # 'alarm' produces no value; using it in an expression is caught
        # at lowering (the validator accepts the call shape).
        from repro.ir.lowering import lower_program

        program = parse_program("fn main() { let x = 1; }")
        lower_program(program)  # sanity: lowering works on valid input


class TestRequireMainFlag:
    def test_fragment_without_main(self):
        info = check("fn helper() { skip; }", require_main=False)
        assert "helper" in info.functions
