"""Taint analysis tests: provenance, summaries, uses (Algorithm 2)."""

from repro.analysis.provenance import common_context
from repro.analysis.taint import analyze_module, fresh_pid
from repro.ir import instructions as ir
from repro.ir.lowering import lower_program
from repro.lang.parser import parse_program


def analyze(source: str):
    module = lower_program(parse_program(source))
    return module, analyze_module(module)


def annot_uid(module, kind: str, nth: int = 0):
    annots = [a for a in module.annot_instrs() if a.kind == kind]
    return annots[nth].uid


def chain_strs(chains) -> set[str]:
    return {str(c) for c in chains}


class TestDirectDependence:
    def test_fresh_var_depends_on_its_input(self):
        module, taint = analyze(
            "inputs ch;\nfn main() { let x = input(ch); Fresh(x); }"
        )
        uid = annot_uid(module, "fresh")
        inputs = taint.annot_inputs[uid]
        assert len(inputs) == 1
        op = next(iter(inputs)).op
        assert isinstance(module.instr(op), ir.InputInstr)

    def test_pure_var_has_no_inputs(self):
        module, taint = analyze("fn main() { let x = 1 + 2; Fresh(x); }")
        uid = annot_uid(module, "fresh")
        assert taint.annot_inputs[uid] == set()

    def test_derived_value_keeps_dependence(self):
        module, taint = analyze(
            "inputs ch;\nfn main() { let a = input(ch); let x = a * 2 + 1; Fresh(x); }"
        )
        uid = annot_uid(module, "fresh")
        assert len(taint.annot_inputs[uid]) == 1

    def test_two_inputs_union(self):
        module, taint = analyze(
            "inputs a, b;\n"
            "fn main() { let x = input(a); let y = input(b); "
            "let s = x + y; Fresh(s); }"
        )
        uid = annot_uid(module, "fresh")
        assert len(taint.annot_inputs[uid]) == 2


class TestInterprocedural:
    def test_return_flow_builds_chain(self):
        module, taint = analyze(
            "inputs ch;\n"
            "fn get() { let r = input(ch); return r; }\n"
            "fn main() { let x = get(); Fresh(x); }"
        )
        uid = annot_uid(module, "fresh")
        (chain,) = taint.annot_inputs[uid]
        assert len(chain) == 2  # call site in main :: input in get
        assert chain.ids[0].func == "main"
        assert chain.ids[1].func == "get"

    def test_two_calls_two_chains(self):
        module, taint = analyze(
            "inputs ch;\n"
            "fn get() { let r = input(ch); return r; }\n"
            "fn main() { let consistent(1) a = get(); "
            "let consistent(1) b = get(); }"
        )
        pid_uid = annot_uid(module, "consistent")
        all_inputs = set()
        for annot in module.annot_instrs():
            all_inputs |= taint.annot_inputs[annot.uid]
        # Same static input instruction, two distinct provenance chains.
        assert len(all_inputs) == 2
        assert len({c.op for c in all_inputs}) == 1

    def test_pass_by_reference_flow(self):
        module, taint = analyze(
            "inputs ch;\n"
            "fn fill(&out) { *out = input(ch); }\n"
            "fn main() { let x = 0; fill(&x); Fresh(x); }"
        )
        uid = annot_uid(module, "fresh")
        (chain,) = taint.annot_inputs[uid]
        assert chain.ids[0].func == "main"
        assert chain.op.func == "fill"

    def test_argument_flow_context_sensitive(self):
        module, taint = analyze(
            "inputs ch;\n"
            "fn double(v) { return v * 2; }\n"
            "fn main() {\n"
            "  let raw = input(ch);\n"
            "  let cooked = double(raw);\n"
            "  Fresh(cooked);\n"
            "  let pure = double(7);\n"
            "  Fresh(pure);\n"
            "}"
        )
        fresh_annots = [a for a in module.annot_instrs() if a.kind == "fresh"]
        tainted = taint.annot_inputs[fresh_annots[0].uid]
        clean = taint.annot_inputs[fresh_annots[1].uid]
        assert len(tainted) == 1
        assert clean == set()  # context sensitivity: no cross-call smearing


class TestControlDependence:
    def test_control_dependent_def_is_tainted(self):
        module, taint = analyze(
            "inputs ch;\n"
            "fn main() {\n"
            "  let t = input(ch);\n"
            "  let y = 0;\n"
            "  if t > 3 { y = 1; }\n"
            "  Fresh(y);\n"
            "}"
        )
        uid = annot_uid(module, "fresh")
        assert len(taint.annot_inputs[uid]) == 1


class TestGlobalFlow:
    def test_taint_through_global(self):
        module, taint = analyze(
            "inputs ch;\nnonvolatile g = 0;\n"
            "fn main() { let t = input(ch); g = t; let x = g; Fresh(x); }"
        )
        uid = annot_uid(module, "fresh")
        assert len(taint.annot_inputs[uid]) == 1

    def test_taint_through_array(self):
        module, taint = analyze(
            "inputs ch;\nnonvolatile a[2];\n"
            "fn main() { let t = input(ch); a[0] = t; let x = a[1]; Fresh(x); }"
        )
        uid = annot_uid(module, "fresh")
        # Array granularity is whole-array (conservative).
        assert len(taint.annot_inputs[uid]) == 1


class TestUses:
    def test_direct_use_and_control_closure(self):
        module, taint = analyze(
            "inputs ch;\n"
            "fn main() { let x = input(ch); Fresh(x); "
            "if x > 5 { alarm(); } }"
        )
        uid = annot_uid(module, "fresh")
        uses = taint.uses[fresh_pid(uid)]
        used_instrs = [module.instr(c.op) for c in uses]
        assert any(isinstance(i, ir.Branch) for i in used_instrs)
        assert any(isinstance(i, ir.OutputInstr) for i in used_instrs)

    def test_rederived_value_is_not_a_use(self):
        module, taint = analyze(
            "inputs ch;\n"
            "fn main() { let x = input(ch); Fresh(x); "
            "let w = x + 1; log(w); }"
        )
        uid = annot_uid(module, "fresh")
        uses = taint.uses[fresh_pid(uid)]
        used_instrs = [module.instr(c.op) for c in uses]
        # The derivation reads x (a use); the log of w is not.
        assert any(isinstance(i, ir.Assign) and i.dest == "w" for i in used_instrs)
        assert not any(isinstance(i, ir.OutputInstr) for i in used_instrs)

    def test_move_preserves_use_tracking(self):
        module, taint = analyze(
            "inputs ch;\n"
            "fn main() { let x = input(ch); Fresh(x); let y = x; log(y); }"
        )
        uid = annot_uid(module, "fresh")
        uses = taint.uses[fresh_pid(uid)]
        used_instrs = [module.instr(c.op) for c in uses]
        assert any(isinstance(i, ir.OutputInstr) for i in used_instrs)

    def test_uses_follow_into_callee(self):
        module, taint = analyze(
            "inputs ch;\n"
            "fn consume(v) { if v > 2 { alarm(); } }\n"
            "fn main() { let x = input(ch); Fresh(x); consume(x); }"
        )
        uid = annot_uid(module, "fresh")
        uses = taint.uses[fresh_pid(uid)]
        assert any(c.op.func == "consume" for c in uses)

    def test_reassignment_kills_freshness_tag(self):
        module, taint = analyze(
            "inputs ch;\n"
            "fn main() { let x = input(ch); Fresh(x); x = 0; log(x); }"
        )
        uid = annot_uid(module, "fresh")
        uses = taint.uses.get(fresh_pid(uid), set())
        used_instrs = [module.instr(c.op) for c in uses]
        assert not any(isinstance(i, ir.OutputInstr) for i in used_instrs)


class TestSummaries:
    def test_local_summary_for_input_wrapper(self):
        module, taint = analyze(
            "inputs ch;\n"
            "fn get() { let r = input(ch); return r; }\n"
            "fn main() { let x = get(); Fresh(x); }"
        )
        summary = taint.summaries.of("get")
        rows = summary.local.get("ret")
        assert rows
        entry = next(iter(rows))
        assert entry.input.func == "get"

    def test_caller_summary_for_pass_through(self):
        module, taint = analyze(
            "inputs ch;\n"
            "fn norm(v) { return v / 2; }\n"
            "fn main() { let t = input(ch); let n = norm(t); Fresh(n); }"
        )
        summary = taint.summaries.of("norm")
        assert summary.callers  # context-specific caller summary exists
        site, tmap = next(iter(summary.callers.items()))
        assert tmap.get("v") or tmap.get("ret")


class TestCommonContext:
    def test_figure6_common_prefix(self, calls_ocelot):
        policies = calls_ocelot.policies
        consistent = policies.consistent_policies()[0]
        context = common_context(sorted(consistent.ops()))
        # Both calls to pres happen inside confirm: the candidate context
        # is main -> confirm.
        assert len(context) == 1
        from repro.core.inference import candidate_function

        assert candidate_function(calls_ocelot.module, context) == "confirm"
