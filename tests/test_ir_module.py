"""IR container, verifier, and printer tests."""

import pytest

from repro.ir import instructions as ir
from repro.ir.lowering import lower_program
from repro.ir.module import IRError
from repro.ir.printer import print_instr, print_ir_function, print_module
from repro.ir.verify import verify_module
from repro.lang.parser import parse_program


def lower(source: str):
    return lower_program(parse_program(source))


class TestModuleQueries:
    def test_instr_lookup_by_uid(self):
        module = lower("fn main() { skip; }")
        for instr in module.all_instrs():
            assert module.instr(instr.uid) is instr

    def test_unknown_function_raises(self):
        module = lower("fn main() { skip; }")
        with pytest.raises(IRError):
            module.function("ghost")

    def test_unknown_label_raises(self):
        module = lower("fn main() { skip; }")
        with pytest.raises(IRError):
            module.function("main").instr_by_label(999)

    def test_input_and_annot_collections(self):
        module = lower(
            "inputs ch;\nfn main() { let x = input(ch); Fresh(x); log(x); }"
        )
        assert len(module.input_instrs()) == 1
        assert len(module.annot_instrs()) == 1

    def test_nonvolatile_names(self):
        module = lower(
            "nonvolatile g = 1;\nnonvolatile a[2];\nfn main() { skip; }"
        )
        assert module.nonvolatile_names() == {"g", "a"}

    def test_fresh_region_ids_unique(self):
        module = lower("fn main() { skip; }")
        ids = {module.fresh_region() for _ in range(10)}
        assert len(ids) == 10

    def test_block_of_and_position_of_agree(self):
        module = lower("fn main() { if 1 < 2 { alarm(); } log(3); }")
        func = module.function("main")
        for instr in func.all_instrs():
            block = func.block_of(instr.uid)
            pos_block, _ = func.position_of(instr.uid)
            assert block == pos_block


class TestVerifier:
    def test_accepts_lowered_module(self):
        module = lower(
            "inputs ch;\nnonvolatile g = 0;\n"
            "fn f(&p) { *p = input(ch); }\n"
            "fn main() { let x = 0; f(&x); g = x; log(g); }"
        )
        verify_module(module)

    def test_detects_dangling_successor(self):
        module = lower("fn main() { skip; }")
        func = module.function("main")
        func.blocks[func.entry].terminator = func.stamp(ir.Jump(target="ghost"))
        with pytest.raises(IRError, match="dangling"):
            verify_module(module)

    def test_detects_missing_terminator(self):
        module = lower("fn main() { skip; }")
        func = module.function("main")
        func.blocks[func.entry].terminator = None
        with pytest.raises(IRError, match="no terminator"):
            verify_module(module)

    def test_detects_duplicate_labels(self):
        module = lower("fn main() { skip; skip; }")
        func = module.function("main")
        a, b = func.blocks[func.entry].instrs[:2]
        b.uid = a.uid
        with pytest.raises(IRError, match="duplicate label"):
            verify_module(module)

    def test_detects_unbalanced_atomic(self):
        module = lower("fn main() { skip; }")
        func = module.function("main")
        start = func.stamp(ir.AtomicStart(region="r9"))
        func.blocks[func.entry].instrs.insert(0, start)
        with pytest.raises(IRError, match="open atomic region"):
            verify_module(module)

    def test_detects_stray_end(self):
        module = lower("fn main() { skip; }")
        func = module.function("main")
        end = func.stamp(ir.AtomicEnd(region="r9"))
        func.blocks[func.entry].instrs.insert(0, end)
        with pytest.raises(IRError, match="without matching start"):
            verify_module(module)

    def test_detects_bad_call_arity(self):
        module = lower("fn f(a) { skip; }\nfn main() { f(1); }")
        func = module.function("main")
        for block in func.blocks.values():
            for instr in block.instrs:
                if isinstance(instr, ir.CallInstr):
                    instr.args = []
        with pytest.raises(IRError, match="arity"):
            verify_module(module)


class TestPrinter:
    def test_print_module_smoke(self):
        module = lower(
            "inputs ch;\nnonvolatile g = 0;\nnonvolatile a[2];\n"
            "fn get() { let v = input(ch); return v; }\n"
            "fn main() {\n"
            "  let x = get();\n"
            "  Fresh(x);\n"
            "  if x > 1 { alarm(); }\n"
            "  atomic { g = g + 1; }\n"
            "  a[0] = x;\n"
            "  work(5);\n"
            "  log(x);\n"
            "}"
        )
        text = print_module(module)
        assert "fn main()" in text
        assert "input(ch)" in text
        assert "annot fresh(x)" in text
        assert "atomic_start" in text and "atomic_end" in text
        assert "[nv]" in text
        assert "work(5)" in text

    def test_every_instruction_kind_prints(self):
        module = lower(
            "inputs ch;\nnonvolatile a[2];\n"
            "fn f(&p, v) { *p = v; return v; }\n"
            "fn main() {\n"
            "  let x = input(ch);\n"
            "  Consistent(x, 1);\n"
            "  let y = 0;\n"
            "  let r = f(&y, x);\n"
            "  a[0] = r;\n"
            "  if r > 0 { alarm(); } else { skip; }\n"
            "  work(3);\n"
            "}"
        )
        for instr in module.all_instrs():
            line = print_instr(instr)
            assert str(instr.uid.label) in line

    def test_function_print_orders_entry_first_exit_last(self):
        module = lower("fn main() { if 1 < 2 { alarm(); } }")
        text = print_ir_function(module.function("main"))
        lines = [l.strip() for l in text.splitlines() if l.strip().endswith(":")]
        assert lines[0].startswith("entry")
        assert lines[-1].startswith("exit")
