"""Whole-harness integration: ``python -m repro.eval`` end to end."""

import pytest

from repro.cli import main as cli_main
from repro.eval.runner import main as eval_main, run_all


@pytest.fixture(scope="module")
def all_tables():
    return run_all(seed=0)


class TestRunAll:
    def test_produces_seven_tables(self, all_tables):
        titles = [t.title for t in all_tables]
        assert len(all_tables) == 7
        assert any("Table 1" in t for t in titles)
        assert any("Figure 7" in t for t in titles)
        assert any("Figure 8" in t for t in titles)
        assert any("Table 2a" in t for t in titles)
        assert any("Table 2b" in t for t in titles)
        assert any("Table 3" in t for t in titles)
        assert any("Table 4" in t for t in titles)

    def test_every_table_renders_both_formats(self, all_tables):
        for table in all_tables:
            assert table.render_text()
            assert table.render_markdown().startswith("###")

    def test_headline_rows_present(self, all_tables):
        table2a = next(t for t in all_tables if "Table 2a" in t.title)
        for row in table2a.rows:
            assert row[1] == "0%"  # Ocelot column
            assert row[2] == "100%"  # JIT column


class TestEntryPoints:
    def test_eval_main_text(self, capsys):
        assert eval_main(["--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "Table 2a" in out

    def test_cli_eval_markdown(self, capsys):
        assert cli_main(["eval", "--markdown", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "### Table 2b" in out
