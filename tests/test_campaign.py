"""Campaign-engine tests: matrix expansion, executor parity, JSON I/O.

The acceptance sweep (3 apps x 3 configs x 2 environments) runs through
both the serial and the multiprocessing executor and must aggregate to
identical results, with the second run reusing every build from the
compile cache (zero recompiles).
"""

import json

import pytest

from repro.core.cache import GLOBAL_CACHE
from repro.eval.campaign import (
    MODE_INJECTION,
    CampaignError,
    CampaignResult,
    CampaignSpec,
    EnvironmentSpec,
    JobResult,
    MultiprocessExecutor,
    SerialExecutor,
    SupplySpec,
    cells,
    execute_job,
    make_executor,
    run_campaign,
)


def small_spec(**overrides) -> CampaignSpec:
    """The acceptance grid: 3 apps x 3 configs x 2 environments."""
    defaults = dict(
        name="acceptance",
        apps=("greenhouse", "tire", "cem"),
        configs=("ocelot", "jit", "atomics"),
        environments=(
            EnvironmentSpec("default", env_seed=0),
            EnvironmentSpec("shifted", env_seed=7),
        ),
        supplies=(SupplySpec.from_profile(seed_offset=23),),
        seeds=(0,),
        budget_cycles=60_000,
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


class TestExpansion:
    def test_matrix_size_is_product_of_axes(self):
        spec = small_spec(seeds=(0, 1))
        jobs = spec.expand()
        assert spec.size == 3 * 3 * 2 * 1 * 2
        assert len(jobs) == spec.size

    def test_job_ids_unique_and_descriptive(self):
        jobs = small_spec().expand()
        ids = [job.job_id for job in jobs]
        assert len(set(ids)) == len(ids)
        assert "greenhouse/ocelot/default/harvest/s0" in ids

    def test_jobs_inherit_campaign_knobs(self):
        spec = small_spec(budget_cycles=12_345, max_activations=7)
        for job in spec.expand():
            assert job.budget_cycles == 12_345
            assert job.max_activations == 7

    def test_unknown_app_rejected(self):
        with pytest.raises(CampaignError, match="unknown app"):
            small_spec(apps=("nonesuch",))

    def test_unknown_config_rejected(self):
        with pytest.raises(CampaignError, match="configuration"):
            small_spec(configs=("debug",))

    def test_unknown_mode_rejected(self):
        with pytest.raises(CampaignError, match="mode"):
            small_spec(mode="fuzz")

    def test_duplicate_environment_names_rejected(self):
        with pytest.raises(CampaignError, match="duplicate"):
            small_spec(
                environments=(
                    EnvironmentSpec("same", 0),
                    EnvironmentSpec("same", 1),
                )
            )


class TestSpecJson:
    def test_spec_round_trips(self):
        spec = small_spec(seeds=(0, 3))
        assert CampaignSpec.from_json(spec.to_json()) == spec

    def test_apps_all_shorthand(self):
        from repro.apps import BENCHMARKS

        spec = CampaignSpec.from_dict({"apps": "all"})
        assert spec.apps == tuple(BENCHMARKS)

    def test_invalid_json_is_a_campaign_error(self):
        with pytest.raises(CampaignError, match="not valid JSON"):
            CampaignSpec.from_json("{nope")
        with pytest.raises(CampaignError, match="JSON object"):
            CampaignSpec.from_json("[1, 2]")

    def test_environment_overrides_round_trip(self):
        env = EnvironmentSpec("hot", 2, overrides=(("temp", "99"),))
        assert EnvironmentSpec.from_dict(env.to_dict()) == env

    def test_unknown_supply_field_is_a_campaign_error(self):
        spec = json.dumps({"apps": ["cem"], "supplies": [{"nme": "typo"}]})
        with pytest.raises(CampaignError, match="malformed campaign spec"):
            CampaignSpec.from_json(spec)

    def test_non_integer_field_is_a_campaign_error(self):
        spec = json.dumps({"apps": ["cem"], "budget_cycles": "lots"})
        with pytest.raises(CampaignError, match="malformed campaign spec"):
            CampaignSpec.from_json(spec)

    def test_non_list_seeds_is_a_campaign_error(self):
        spec = json.dumps({"apps": ["cem"], "seeds": 5})
        with pytest.raises(CampaignError, match="malformed campaign spec"):
            CampaignSpec.from_json(spec)


class TestExecution:
    @pytest.fixture(scope="class")
    def serial_result(self):
        return run_campaign(small_spec(), SerialExecutor())

    def test_every_job_reports(self, serial_result):
        assert len(serial_result.jobs) == small_spec().size
        for job in serial_result.jobs:
            assert job.activations > 0
            assert job.completed_runs > 0
            assert job.cycles_on > 0

    def test_ocelot_never_violates_jit_does(self, serial_result):
        by_cell = serial_result.by_cell()
        for (app, config), jobs in by_cell.items():
            if config in ("ocelot", "atomics"):
                assert all(j.violating_runs == 0 for j in jobs), (app, config)
        jit_violations = sum(
            j.violations for j in serial_result.jobs if j.config == "jit"
        )
        assert jit_violations > 0

    def test_violation_kinds_sum_to_total(self, serial_result):
        for job in serial_result.jobs:
            assert (
                job.fresh_violations + job.consistent_violations
                == job.violations
            )

    def test_environments_actually_differ(self, serial_result):
        # Distinct env seeds shift the sensed world, so at least one cell
        # must measure different cycle counts across the two environments.
        differing = 0
        by_cell = serial_result.by_cell()
        for jobs in by_cell.values():
            envs = {j.environment: j.cycles_on for j in jobs}
            if envs["default"] != envs["shifted"]:
                differing += 1
        assert differing > 0

    def test_serial_parallel_parity(self, serial_result):
        parallel = run_campaign(small_spec(), MultiprocessExecutor(processes=3))
        assert parallel.executor == "multiprocess"
        assert parallel.fingerprint() == serial_result.fingerprint()
        serial_agg = serial_result.aggregate()
        parallel_agg = parallel.aggregate()
        assert serial_agg == parallel_agg

    def test_cached_second_run_zero_recompiles(self, serial_result):
        before = GLOBAL_CACHE.stats.snapshot()
        again = run_campaign(small_spec(), SerialExecutor())
        after = GLOBAL_CACHE.stats.snapshot()
        assert after["compiles"] == before["compiles"], "second run recompiled"
        assert again.compiles == 0
        assert all(job.compile_cached for job in again.jobs)
        assert again.fingerprint() == serial_result.fingerprint()

    def test_aggregate_sums_across_environments(self, serial_result):
        rows = {(r.app, r.config): r for r in serial_result.aggregate()}
        for (app, config), jobs in serial_result.by_cell().items():
            row = rows[(app, config)]
            assert row.jobs == len(jobs) == 2
            assert row.completed_runs == sum(j.completed_runs for j in jobs)
            assert row.violations == sum(j.violations for j in jobs)

    def test_result_json_round_trip(self, serial_result):
        restored = CampaignResult.from_json(serial_result.to_json())
        assert restored.fingerprint() == serial_result.fingerprint()
        assert restored.spec == serial_result.spec
        assert restored.executor == serial_result.executor
        # and the encoding is plain JSON all the way down
        json.loads(serial_result.to_json())

    def test_table_renders(self, serial_result):
        text = serial_result.table().render_text()
        assert "greenhouse" in text
        assert "serial executor" in text


class TestInjectionMode:
    def test_extra_supply_or_seed_axes_rejected(self):
        with pytest.raises(CampaignError, match="injection mode ignores"):
            CampaignSpec(apps=("cem",), mode=MODE_INJECTION, seeds=(0, 1))
        with pytest.raises(CampaignError, match="injection mode ignores"):
            CampaignSpec(
                apps=("cem",),
                mode=MODE_INJECTION,
                supplies=(SupplySpec(), SupplySpec.continuous()),
            )

    def test_injection_counts_reboots(self):
        spec = CampaignSpec(
            apps=("greenhouse",),
            configs=("jit",),
            supplies=(SupplySpec.continuous(),),
            mode=MODE_INJECTION,
            off_cycles=20_000,
        )
        job = run_campaign(spec).jobs[0]
        assert job.reboots >= job.injection_points

    def test_injection_reproduces_table2a_contract(self):
        spec = CampaignSpec(
            name="inject",
            apps=("greenhouse",),
            configs=("ocelot", "jit"),
            environments=(EnvironmentSpec(),),
            supplies=(SupplySpec.continuous(),),
            mode=MODE_INJECTION,
            off_cycles=20_000,
        )
        result = run_campaign(spec)
        by_cell = cells(result)
        ocelot = by_cell[("greenhouse", "ocelot")]
        jit = by_cell[("greenhouse", "jit")]
        assert jit.injection_points > 0
        assert jit.injection_violating == jit.injection_points
        assert ocelot.injection_violating == 0
        assert jit.injection_rate == 1.0
        assert ocelot.injection_rate == 0.0


class TestEnvironmentOverrides:
    def test_override_rebinds_channel(self):
        env = EnvironmentSpec(overrides=(("temp", "75"),)).build("greenhouse")
        assert env.read("temp", 0) == 75
        assert env.read("temp", 10_000) == 75

    def test_stepping_override(self):
        env = EnvironmentSpec(overrides=(("hum", "10,90:100"),)).build(
            "greenhouse"
        )
        assert env.read("hum", 0) == 10
        assert env.read("hum", 100) == 90

    def test_bad_override_rejected_at_spec_time(self):
        # A malformed override must fail when the spec is built, not in a
        # worker process mid-campaign.
        with pytest.raises(CampaignError, match="bad signal value"):
            EnvironmentSpec(overrides=(("temp", "hot"),))


class TestExecutors:
    def test_make_executor_names(self):
        assert make_executor("serial").name == "serial"
        assert make_executor("multiprocess").name == "multiprocess"
        assert make_executor("parallel").name == "multiprocess"
        with pytest.raises(CampaignError):
            make_executor("quantum")

    def test_multiprocess_rejects_bad_process_count(self):
        with pytest.raises(ValueError):
            MultiprocessExecutor(processes=0)

    def test_single_job_runs_inline(self):
        spec = CampaignSpec(
            apps=("cem",),
            configs=("ocelot",),
            budget_cycles=30_000,
        )
        result = run_campaign(spec, MultiprocessExecutor(processes=4))
        assert len(result.jobs) == 1

    def test_job_is_pure_function_of_spec(self):
        job = small_spec().expand()[0]
        first = execute_job(job)
        second = execute_job(job)
        assert first.fingerprint() == second.fingerprint()


class TestJobResult:
    def test_round_trip(self):
        job = small_spec().expand()[0]
        result = execute_job(job)
        assert JobResult.from_dict(result.to_dict()) == result

    def test_rates_guard_division_by_zero(self):
        empty = JobResult(
            job_id="x",
            app="cem",
            config="ocelot",
            environment="default",
            supply="harvest",
            seed=0,
            mode="activations",
            region_count=0,
            compile_cached=False,
        )
        assert empty.violation_rate == 0.0
        assert empty.injection_rate == 0.0
