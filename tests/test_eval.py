"""Evaluation harness tests: the shapes the paper's tables/figures report.

These run the real experiments at reduced budgets, asserting the *shape*
claims rather than absolute numbers:

* Figure 7: Ocelot within ~15% of JIT on continuous power; Atomics-only
  far slower on CEM; Atomics-only not slower than Ocelot on Tire.
* Table 2a: Ocelot 0%, JIT 100%.
* Table 2b: Ocelot 0% everywhere; JIT ordering Photo highest, CEM ~0.
* Table 4: Ocelot cheapest overall; exact paper matches where modeled.
"""

import pytest

from repro.eval.figure7 import measure_figure7
from repro.eval.figure8 import measure_figure8
from repro.eval.report import Table, geometric_mean
from repro.eval.table1 import table1
from repro.eval.table2 import measure_table2a, measure_table2b
from repro.eval.table3 import table3
from repro.eval.table4 import measure_table4


@pytest.fixture(scope="module")
def continuous_rows():
    return measure_figure7(activations=12)


class TestTable1:
    def test_six_rows_plus_note(self):
        table = table1()
        assert len(table.rows) == 6
        apps = [row[0] for row in table.rows]
        assert apps == sorted(apps) or len(set(apps)) == 6

    def test_renders_text_and_markdown(self):
        table = table1()
        assert "Table 1" in table.render_text()
        assert table.render_markdown().startswith("###")


class TestFigure7Shape:
    def test_ocelot_close_to_jit(self, continuous_rows):
        overheads = [row.normalized("ocelot") for row in continuous_rows]
        assert geometric_mean(overheads) < 1.15

    def test_cem_atomics_blowup(self, continuous_rows):
        cem = next(r for r in continuous_rows if r.app == "cem")
        assert cem.normalized("atomics") > 1.8
        assert cem.normalized("ocelot") < 1.15

    def test_tire_atomics_not_slower_than_ocelot(self, continuous_rows):
        tire = next(r for r in continuous_rows if r.app == "tire")
        assert tire.normalized("atomics") <= tire.normalized("ocelot") + 0.02

    def test_jit_is_fastest(self, continuous_rows):
        for row in continuous_rows:
            assert row.normalized("ocelot") >= 0.97
            assert row.normalized("atomics") >= 0.97


class TestFigure8Shape:
    def test_charging_dominates(self, continuous_rows):
        rows = measure_figure8(
            budget=120_000, continuous=continuous_rows, seed=3
        )
        for row in rows:
            for config in ("jit", "ocelot", "atomics"):
                on = row.normalized_on(config)
                total = row.normalized_total(config)
                assert total > on * 1.5, (row.app, config)

    def test_on_time_ordering_matches_continuous(self, continuous_rows):
        rows = measure_figure8(
            budget=120_000, continuous=continuous_rows, seed=3
        )
        cem = next(r for r in rows if r.app == "cem")
        assert cem.normalized_on("atomics") > cem.normalized_on("ocelot")


class TestTable2aShape:
    def test_ocelot_zero_jit_hundred(self):
        rows = measure_table2a(off_cycles=20_000)
        for row in rows:
            assert row.rate("ocelot") == 0.0, row.app
            assert row.rate("jit") == 100.0, row.app
            assert row.results["jit"][1] > 0


class TestTable2bShape:
    @pytest.fixture(scope="class")
    def rows(self):
        return measure_table2b(budget=150_000, seed=1)

    def test_ocelot_never_violates(self, rows):
        for row in rows:
            assert row.results["ocelot"][0] == 0.0, row.app

    def test_jit_ordering(self, rows):
        rates = {r.app: r.results["jit"][0] for r in rows}
        assert rates["photo"] >= rates["greenhouse"]
        assert rates["photo"] >= rates["tire"]
        assert rates["cem"] <= 0.05
        assert rates["photo"] > 0.2

    def test_runs_completed(self, rows):
        for row in rows:
            assert row.results["jit"][1] > 5, row.app


class TestTables3And4:
    def test_table3_lists_five_systems(self):
        assert len(table3().rows) == 5

    def test_table4_ocelot_column_minimal(self):
        rows = measure_table4()
        for row in rows:
            assert row.ours["ocelot"] <= row.ours["tics"]

    def test_table4_paper_matches(self):
        rows = {r.app: r for r in measure_table4()}
        for app in ("activity", "cem", "greenhouse", "photo", "tire"):
            assert rows[app].ours == rows[app].paper, app


class TestReportRendering:
    def test_table_alignment(self):
        table = Table(title="T", headers=["a", "bb"])
        table.add_row("x", 1)
        table.add_row("yyyy", 2.5)
        text = table.render_text()
        assert "yyyy" in text and "2.50" in text

    def test_geometric_mean(self):
        assert abs(geometric_mean([1.0, 4.0]) - 2.0) < 1e-9
        with pytest.raises(ValueError):
            geometric_mean([])
