"""The ``repro lint`` subcommand and the ``staleness`` build artifact."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

#: Structurally clean under region-bearing configs.
CLEAN = """\
inputs temp;

fn main() {
  let t = input(temp);
  Fresh(t);
  let u = t + 1;
  log(u);
}
"""

#: The required input executes on one branch arm only: DOOMED when the
#: probe environment skips the arm.
DOOMED = """\
inputs cond, temp;

fn main() {
  let t = 0;
  let c = input(cond);
  if c > 0 {
    t = input(temp);
  }
  Fresh(t);
  log(t);
}
"""


@pytest.fixture()
def source_file(tmp_path):
    def write(text: str):
        path = tmp_path / "prog.ocl"
        path.write_text(text)
        return str(path)

    return write


class TestLint:
    def test_clean_program_exits_zero(self, source_file, capsys):
        assert main(["lint", source_file(CLEAN)]) == 0
        out = capsys.readouterr().out
        assert "safe: 1" in out
        assert "SAFE" in out

    def test_doomed_program_gates(self, source_file, capsys):
        assert main(["lint", source_file(DOOMED), "--config", "jit"]) == 1
        out = capsys.readouterr().out
        assert "DOOMED" in out
        assert "witness" in out

    def test_fail_on_never_disarms_the_gate(self, source_file):
        assert (
            main(
                [
                    "lint",
                    source_file(DOOMED),
                    "--config",
                    "jit",
                    "--fail-on",
                    "never",
                ]
            )
            == 0
        )

    def test_fail_on_warning_catches_env_dependent(self, source_file):
        # Under jit nothing is must-available: ENV-DEPENDENT warnings.
        assert (
            main(
                [
                    "lint",
                    source_file(CLEAN),
                    "--config",
                    "jit",
                    "--fail-on",
                    "warning",
                ]
            )
            == 1
        )
        assert main(["lint", source_file(CLEAN), "--config", "jit"]) == 0

    def test_set_binding_flips_probe_verdict(self, source_file, capsys):
        # cond=1 takes the arm: the probe no longer sees a firing-
        # without-failure, and the constant environment proves nothing
        # fires under it -- but jit has no regions, so the env proof
        # cannot promote to SAFE; the verdict degrades to a warning.
        assert (
            main(
                [
                    "lint",
                    source_file(DOOMED),
                    "--config",
                    "jit",
                    "--set",
                    "cond=1",
                    "--set",
                    "temp=5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "doomed: 0" in out
        assert "ENV-DEPENDENT" in out

    def test_json_format_is_machine_readable(self, source_file, capsys):
        assert (
            main(
                [
                    "lint",
                    source_file(DOOMED),
                    "--config",
                    "jit",
                    "--format",
                    "json",
                    "--fail-on",
                    "never",
                ]
            )
            == 0
        )
        data = json.loads(capsys.readouterr().out)
        assert data["config"] == "jit"
        assert data["summary"]["doomed"] == 1
        (verdict,) = data["verdicts"]
        assert verdict["verdict"] == "doomed"
        assert verdict["level"] == "error"
        assert verdict["witness"]

    def test_window_override_changes_report(self, source_file, capsys):
        assert (
            main(
                [
                    "lint",
                    source_file(CLEAN),
                    "--window",
                    "123456",
                    "--format",
                    "json",
                ]
            )
            == 0
        )
        data = json.loads(capsys.readouterr().out)
        assert data["window_cycles"] == 123456

    def test_benchmark_names_resolve(self, capsys):
        assert main(["lint", "tire"]) == 0
        out = capsys.readouterr().out
        assert "24 check(s)" in out

    def test_metrics_out_records_verdict_counts(self, source_file, tmp_path):
        metrics = tmp_path / "m.json"
        assert (
            main(
                [
                    "lint",
                    source_file(CLEAN),
                    "--metrics-out",
                    str(metrics),
                ]
            )
            == 0
        )
        data = json.loads(metrics.read_text())
        assert data["counters"]["lint.safe"] == 1


class TestStalenessArtifact:
    def test_build_emit_staleness(self, source_file, capsys):
        assert (
            main(["build", source_file(CLEAN), "--emit", "staleness"]) == 0
        )
        out = capsys.readouterr().out
        assert "lint:" in out
        assert "SAFE" in out

    def test_artifact_listed_in_registry(self):
        from repro.core.passes.artifacts import artifact_names

        assert "staleness" in artifact_names()


class TestGuidedVerify:
    def test_guided_flag_matches_unguided_verdict(self, source_file, capsys):
        target = source_file(DOOMED)
        plain = main(["verify", target, "--config", "jit"])
        plain_out = capsys.readouterr().out
        guided = main(["verify", target, "--config", "jit", "--guided"])
        guided_out = capsys.readouterr().out
        assert plain == guided == 1  # counterexample found both ways
        assert "verdict     : counterexample" in plain_out
        assert "verdict     : counterexample" in guided_out
