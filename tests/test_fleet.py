"""Fleet simulator tests: specs, scheduling, parity, checkpoint/resume."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings

from repro.eval.campaign import EnvironmentSpec
from repro.fleet import (
    DeviceClass,
    FleetAggregator,
    FleetCheckpoint,
    FleetError,
    FleetSpec,
    aggregate_fingerprint,
    checkpoint_fingerprint,
    duty_table,
    histogram_table,
    run_fleet,
    run_shard,
)
from repro.fleet.device import DeviceFactory
from repro.fleet.scheduler import FleetScheduler
from repro.runtime.harness import ActivationRecord
from tests.strategies import fleet_specs


def small_spec(**overrides) -> FleetSpec:
    defaults = dict(
        name="test-fleet",
        fleet_seed=11,
        budget_cycles=15_000,
        classes=(
            DeviceClass(
                name="tire-ocelot",
                app="tire",
                config="ocelot",
                count=4,
                harvest_jitter=0.4,
                phase_jitter=5_000,
            ),
            DeviceClass(
                name="gh-jit",
                app="greenhouse",
                config="jit",
                count=3,
                environment=EnvironmentSpec(env_seed=7),
                env_seed_stride=2,
            ),
        ),
    )
    defaults.update(overrides)
    return FleetSpec(**defaults)


class TestFleetSpec:
    def test_json_roundtrip(self):
        spec = small_spec()
        assert FleetSpec.from_json(spec.to_json()) == spec

    def test_unknown_app_rejected(self):
        with pytest.raises(FleetError, match="unknown app"):
            DeviceClass(name="x", app="nope")

    def test_unknown_config_rejected(self):
        with pytest.raises(FleetError, match="unknown build configuration"):
            DeviceClass(name="x", app="tire", config="nope")

    def test_duplicate_class_names_rejected(self):
        cls = DeviceClass(name="a", app="tire")
        with pytest.raises(FleetError, match="duplicate"):
            FleetSpec(classes=(cls, cls))

    def test_bad_jitter_rejected(self):
        with pytest.raises(FleetError, match="harvest_jitter"):
            DeviceClass(name="x", app="tire", harvest_jitter=1.5)

    def test_negative_env_seed_stride_rejected(self):
        with pytest.raises(FleetError, match="env_seed_stride"):
            DeviceClass(name="x", app="tire", env_seed_stride=-1)

    def test_expansion_is_deterministic(self):
        spec = small_spec()
        assert spec.expand() == spec.expand()

    def test_expansion_derives_distinct_device_streams(self):
        devices = small_spec().expand()
        assert len(devices) == 7
        assert len({d.seed for d in devices}) == len(devices)
        # Jittered classes get distinct per-device harvest rates...
        tire_rates = {
            d.supply.harvest_rate for d in devices if d.class_name == "tire-ocelot"
        }
        assert len(tire_rates) > 1
        # ... and distinct environment phases.
        phases = {d.phase for d in devices if d.class_name == "tire-ocelot"}
        assert len(phases) > 1
        # env_seed_stride separates the greenhouse worlds.
        gh_env_seeds = [d.env_seed for d in devices if d.class_name == "gh-jit"]
        assert gh_env_seeds == [7, 9, 11]

    def test_with_total_devices_keeps_mix_and_total(self):
        spec = small_spec()  # counts 4 + 3
        scaled = spec.with_total_devices(70)
        counts = [c.count for c in scaled.classes]
        assert sum(counts) == 70
        assert counts == [40, 30]
        # Non-divisible totals still sum exactly.
        assert sum(c.count for c in spec.with_total_devices(11).classes) == 11

    def test_fingerprint_tracks_content(self):
        spec = small_spec()
        assert spec.fingerprint() == small_spec().fingerprint()
        assert spec.fingerprint() != small_spec(fleet_seed=99).fingerprint()

    def test_malformed_json_reports_fleet_error(self):
        with pytest.raises(FleetError, match="not valid JSON"):
            FleetSpec.from_json("{")
        with pytest.raises(FleetError, match="classes"):
            FleetSpec.from_json("{}")


class TestScheduler:
    def test_advances_devices_in_tau_order(self):
        spec = small_spec()
        factory = DeviceFactory()
        devices = [factory.build(d) for d in spec.expand()]
        events = list(FleetScheduler(devices).events())
        assert events, "fleet produced no activations"
        # Reconstruct each activation's start tau: a device's activation
        # starts at the tau its stepper showed when popped.  The scheduler
        # must never run a device whose tau is ahead of another live
        # device's tau; equivalently, per-device activation indices are
        # contiguous and the global stream is reproducible.
        per_device: dict[str, list[int]] = {}
        for dev_spec, record in events:
            per_device.setdefault(dev_spec.device_id, []).append(record.index)
        for indices in per_device.values():
            assert indices == list(range(len(indices)))

    def test_scheduler_matches_single_device_harness(self):
        """Interleaving devices must not change any device's outcome."""
        from repro.runtime.harness import run_activations
        from repro.apps import BENCHMARKS
        from repro.core.cache import GLOBAL_CACHE

        spec = small_spec()
        factory = DeviceFactory()
        devices = [factory.build(d) for d in spec.expand()]
        fleet_counts: dict[str, int] = {}
        for dev_spec, _record in FleetScheduler(devices).events():
            fleet_counts[dev_spec.device_id] = (
                fleet_counts.get(dev_spec.device_id, 0) + 1
            )

        solo_factory = DeviceFactory()
        for dev in spec.expand():
            meta = BENCHMARKS[dev.app]
            compiled = GLOBAL_CACHE.get_or_compile(meta.source, dev.config)
            solo = solo_factory.build(dev)
            result = run_activations(
                compiled,
                solo.stepper._env,
                solo.stepper._supply,
                budget_cycles=dev.budget_cycles,
                costs=meta.cost_model(),
                max_activations=dev.max_activations,
            )
            assert len(result.records) == fleet_counts.get(dev.device_id, 0)


class TestAggregator:
    def make_record(self, **overrides) -> ActivationRecord:
        defaults = dict(
            index=0,
            completed=True,
            violations=0,
            cycles_on=700,
            cycles_off=300,
            reboots=1,
        )
        defaults.update(overrides)
        return ActivationRecord(**defaults)

    def test_merge_equals_single_fold(self):
        spec = small_spec()
        devices = spec.expand()
        whole = run_shard(devices)
        left = run_shard(devices[::2])
        right = run_shard(devices[1::2])
        merged = FleetAggregator().merge(left).merge(right)
        assert merged.to_json() == whole.to_json()

    def test_histograms_and_duty_bins(self):
        agg = FleetAggregator()

        class Spec:
            class_name = "c"
            app = "tire"
            config = "ocelot"

        agg.add_device(Spec())
        agg.observe(Spec(), self.make_record(cycles_on=700, cycles_off=300))
        agg.observe(
            Spec(),
            self.make_record(
                index=1, violations=7, fresh_violations=7, cycles_on=100,
                cycles_off=900,
            ),
        )
        cls = agg["c"]
        assert cls.duty_hist[7] == 1  # 70% duty
        assert cls.duty_hist[1] == 1  # 10% duty
        assert cls.fresh_hist[5] == 1  # 7 violations lands in the 5+ bucket
        assert cls.violating_runs == 1
        assert agg.total_devices == 1

    def test_incomplete_activation_counts_as_stuck(self):
        agg = FleetAggregator()

        class Spec:
            class_name = "c"
            app = "tire"
            config = "ocelot"

        agg.observe(Spec(), self.make_record(completed=False))
        assert agg["c"].stuck_devices == 1
        assert agg["c"].completed_runs == 0

    def test_roundtrip(self):
        spec = small_spec()
        agg = run_shard(spec.expand())
        again = FleetAggregator.from_dict(
            json.loads(json.dumps(agg.to_dict()))
        )
        assert again.to_json() == agg.to_json()

    def test_mismatched_merge_rejected(self):
        from repro.fleet.aggregate import ClassAggregate

        a = ClassAggregate(app="tire", config="ocelot")
        b = ClassAggregate(app="tire", config="jit")
        with pytest.raises(ValueError, match="cannot merge"):
            a.merge(b)


class TestExecutorParity:
    def test_serial_and_sharded_agree_byte_for_byte(self):
        spec = small_spec()
        serial = run_fleet(spec, "serial")
        sharded = run_fleet(spec, "sharded", processes=2)
        assert aggregate_fingerprint(serial) == aggregate_fingerprint(sharded)
        assert serial.aggregate.to_json() == sharded.aggregate.to_json()

    def test_unknown_executor_rejected(self):
        with pytest.raises(FleetError, match="unknown fleet executor"):
            run_fleet(small_spec(), "warp-drive")


class TestCheckpointResume:
    def test_resume_matches_uninterrupted_run(self, tmp_path):
        spec = small_spec()
        full = run_fleet(spec, "serial")

        # Simulate an interrupted invocation: fold only the first three
        # devices, checkpoint, then resume from disk.
        path = tmp_path / "fleet.ckpt.json"
        partial = run_shard(spec.expand()[:3])
        FleetCheckpoint(
            checkpoint_fingerprint(spec),
            3,
            partial.to_dict(),
            executor_family="serial",
        ).save(path)
        resumed = run_fleet(spec, "serial", checkpoint_path=path)
        assert resumed.resumed_devices == 3
        assert aggregate_fingerprint(resumed) == aggregate_fingerprint(full)

    def test_chunked_checkpointing_run_matches(self, tmp_path):
        spec = small_spec()
        full = run_fleet(spec, "serial")
        path = tmp_path / "fleet.ckpt.json"
        chunked = run_fleet(
            spec, "serial", checkpoint_path=path, checkpoint_every=2
        )
        assert aggregate_fingerprint(chunked) == aggregate_fingerprint(full)
        # The final checkpoint covers the whole fleet and reloads cleanly.
        checkpoint = FleetCheckpoint.load(path)
        assert checkpoint.devices_done == spec.device_count
        assert (
            FleetAggregator.from_dict(checkpoint.aggregate).to_json()
            == full.aggregate.to_json()
        )

    def test_mismatched_fingerprint_is_an_error(self, tmp_path):
        spec = small_spec()
        other = small_spec(fleet_seed=99)
        path = tmp_path / "fleet.ckpt.json"
        FleetCheckpoint(
            checkpoint_fingerprint(other),
            1,
            FleetAggregator().to_dict(),
            executor_family="serial",
        ).save(path)
        with pytest.raises(FleetError, match="different"):
            run_fleet(spec, "serial", checkpoint_path=path)

    def test_corrupt_checkpoint_is_an_error(self, tmp_path):
        path = tmp_path / "fleet.ckpt.json"
        path.write_text("{not json")
        with pytest.raises(FleetError, match="checkpoint"):
            run_fleet(small_spec(), "serial", checkpoint_path=path)

    def test_checkpoint_every_requires_a_path(self):
        with pytest.raises(FleetError, match="requires a checkpoint path"):
            run_fleet(small_spec(), "serial", checkpoint_every=2)


class TestReport:
    def test_tables_render(self):
        result = run_fleet(small_spec(), "serial")
        text = result.table().render_text()
        assert "tire-ocelot" in text and "gh-jit" in text
        assert "fresh" in histogram_table(result).render_text()
        assert "90-100%" in duty_table(result).render_text()

    def test_result_json_contains_aggregate(self):
        result = run_fleet(small_spec(), "serial")
        payload = json.loads(result.to_json())
        assert payload["devices"] == 7
        assert set(payload["aggregate"]["classes"]) == {"tire-ocelot", "gh-jit"}


class TestFleetProperties:
    @given(spec=fleet_specs())
    @settings(max_examples=20, deadline=None)
    def test_spec_roundtrip_and_deterministic_expansion(self, spec):
        assert FleetSpec.from_json(spec.to_json()) == spec
        devices = spec.expand()
        assert devices == spec.expand()
        assert len(devices) == spec.device_count
        assert len({d.device_id for d in devices}) == len(devices)

    @given(spec=fleet_specs())
    @settings(max_examples=6, deadline=None)
    def test_split_shards_match_whole(self, spec):
        devices = spec.expand()
        whole = run_shard(devices)
        merged = (
            FleetAggregator()
            .merge(run_shard(devices[0::2]))
            .merge(run_shard(devices[1::2]))
        )
        assert merged.to_json() == whole.to_json()
