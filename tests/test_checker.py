"""Checker tests: the Section 5.2 judgments as executable checks."""

from repro.analysis.policies import build_policies
from repro.analysis.taint import analyze_module
from repro.core.checker import (
    check_atomic_regions,
    check_policy_declarations,
    check_program,
    check_summaries,
)
from repro.core.inference import infer_atomic
from repro.ir.lowering import lower_program
from repro.lang.parser import parse_program


def prepare(source: str):
    module = lower_program(parse_program(source))
    taint = analyze_module(module)
    return module, taint, build_policies(taint)


FRESH_SRC = (
    "inputs temp;\n"
    "fn main() { let x = input(temp); Fresh(x); if x < 5 { alarm(); } }"
)

CONSISTENT_SRC = (
    "inputs a, b;\n"
    "fn main() { let consistent(1) x = input(a); "
    "let consistent(1) y = input(b); log(x, y); }"
)


class TestAtomicRegionCheck:
    def test_uninstrumented_fresh_program_fails(self):
        module, taint, policies = prepare(FRESH_SRC)
        report = check_atomic_regions(module, policies)
        assert not report.ok
        assert any("outside any region" in f for f in report.failures)

    def test_inferred_regions_pass(self):
        module, taint, policies = prepare(FRESH_SRC)
        pm, _ = infer_atomic(module, policies)
        report = check_atomic_regions(module, policies, pm)
        assert report.ok, report.failures

    def test_manual_region_covering_policy_passes(self):
        src = (
            "inputs temp;\n"
            "fn main() { atomic { let x = input(temp); Fresh(x); "
            "if x < 5 { alarm(); } } }"
        )
        module, taint, policies = prepare(src)
        report = check_atomic_regions(module, policies)
        assert report.ok, report.failures

    def test_manual_region_missing_use_fails(self):
        src = (
            "inputs temp;\n"
            "fn main() { atomic { let x = input(temp); Fresh(x); } "
            "if x < 5 { alarm(); } }"
        )
        # NOTE: atomic blocks are scope-transparent, so x is visible after.
        module, taint, policies = prepare(src)
        report = check_atomic_regions(module, policies)
        assert not report.ok

    def test_split_consistent_set_fails(self):
        src = (
            "inputs a, b;\n"
            "fn main() { atomic { let consistent(1) x = input(a); } "
            "atomic { let consistent(1) y = input(b); } log(x, y); }"
        )
        module, taint, policies = prepare(src)
        report = check_atomic_regions(module, policies)
        assert not report.ok
        assert any("distinct atomic extents" in f for f in report.failures)

    def test_one_region_covering_set_passes(self):
        src = (
            "inputs a, b;\n"
            "fn main() { atomic { let consistent(1) x = input(a); "
            "let consistent(1) y = input(b); } log(x, y); }"
        )
        module, taint, policies = prepare(src)
        report = check_atomic_regions(module, policies)
        assert report.ok, report.failures

    def test_policy_extent_discovered(self):
        module, taint, policies = prepare(CONSISTENT_SRC)
        pm, regions = infer_atomic(module, policies)
        report = check_atomic_regions(module, policies, pm)
        pid = regions[0].pid
        assert pid in report.policy_extents


class TestCheckerMode:
    """Section 8: validating manually-placed regions (no inference)."""

    def test_checker_mode_accepts_good_placement(self):
        src = (
            "inputs a, b;\n"
            "fn sample() { atomic { let consistent(1) x = input(a); "
            "let consistent(1) y = input(b); log(x, y); } }\n"
            "fn main() { sample(); }"
        )
        module, taint, policies = prepare(src)
        report = check_atomic_regions(module, policies)
        assert report.ok

    def test_checker_mode_rejects_uncovered_call_chain(self):
        src = (
            "inputs a;\n"
            "fn get() { let v = input(a); return v; }\n"
            "fn main() { let x = get(); atomic { Fresh(x); } log(x); }"
        )
        module, taint, policies = prepare(src)
        report = check_atomic_regions(module, policies)
        assert not report.ok


class TestPolicyDeclarationCheck:
    def test_built_policies_pass_their_own_check(self):
        module, taint, policies = prepare(FRESH_SRC)
        report = check_policy_declarations(module, policies, taint)
        assert report.ok

    def test_missing_input_detected(self):
        module, taint, policies = prepare(FRESH_SRC)
        fresh = policies.fresh_policies()[0]
        fresh.inputs.clear()  # corrupt PD: drop the recorded input
        report = check_policy_declarations(module, policies, taint)
        assert not report.ok
        assert any("Let-fresh" in f for f in report.failures)

    def test_missing_use_detected(self):
        module, taint, policies = prepare(FRESH_SRC)
        fresh = policies.fresh_policies()[0]
        fresh.uses.clear()
        report = check_policy_declarations(module, policies, taint)
        assert not report.ok
        assert any("checkUse" in f for f in report.failures)

    def test_missing_consistent_input_detected(self):
        module, taint, policies = prepare(CONSISTENT_SRC)
        policy = policies.consistent_policies()[0]
        policy.inputs.pop()
        report = check_policy_declarations(module, policies, taint)
        assert not report.ok


class TestSummaryCheck:
    def test_summaries_consistent(self):
        module, taint, policies = prepare(
            "inputs ch;\n"
            "fn get() { let r = input(ch); return r; }\n"
            "fn main() { let x = get(); Fresh(x); log(x); }"
        )
        report = check_summaries(taint)
        assert report.ok, report.failures


class TestTheoremHypothesis:
    def test_full_check_passes_on_ocelot_builds(
        self, weather_ocelot, calls_ocelot, nv_ocelot, weather_atomics
    ):
        for compiled in (weather_ocelot, calls_ocelot, nv_ocelot, weather_atomics):
            assert compiled.check.ok, compiled.check.failures

    def test_full_check_fails_on_jit_builds(self, weather_jit):
        assert not weather_jit.check.ok

    def test_check_program_combines_all_parts(self):
        module, taint, policies = prepare(FRESH_SRC)
        pm, _ = infer_atomic(module, policies)
        report = check_program(module, policies, taint, pm)
        assert report.ok, report.failures
