"""Refinement-oracle library tests (beyond the targeted Figure 2 tests)."""

from repro.core.pipeline import compile_source
from repro.runtime.executor import Machine
from repro.runtime.refinement import (
    candidate_start_times,
    check_refinement,
    committed_outputs,
)
from repro.runtime.supply import FailurePoint, ScheduledFailures, ContinuousPower
from repro.sensors.environment import Environment, steps

SRC = """\
inputs a, b;

fn main() {
  let consistent(1) x = input(a);
  let consistent(1) y = input(b);
  log(x, y);
}
"""


def env_factory():
    return Environment({"a": steps([10, 70], 2500), "b": steps([5, 90], 2500)})


def run_with(compiled, supply):
    machine = Machine(
        compiled.module, env_factory(), supply, plan=compiled.detector_plan()
    )
    result = machine.run()
    assert result.stats.completed
    return result


class TestCommittedOutputs:
    def test_consecutive_duplicates_collapse(self):
        compiled = compile_source(SRC, "ocelot")
        result = run_with(compiled, ContinuousPower())
        outputs = committed_outputs(result.trace)
        assert len(outputs) == 1
        assert outputs[0].op == "log"

    def test_candidate_times_include_reboots(self):
        compiled = compile_source(SRC, "ocelot")
        site = sorted(compiled.detector_plan().checks)[0]
        result = run_with(
            compiled, ScheduledFailures([FailurePoint(chain=site)], off_cycles=2500)
        )
        taus = candidate_start_times(result.trace)
        reboot_taus = [r.tau for r in result.trace.reboots]
        assert set(reboot_taus) <= set(taus)
        assert 0 in taus


class TestOracle:
    def test_continuous_run_refines_itself(self):
        compiled = compile_source(SRC, "ocelot")
        result = run_with(compiled, ContinuousPower())
        verdict = check_refinement(compiled, result.trace, env_factory)
        assert verdict.refined
        assert verdict.witness_tau == 0

    def test_ocelot_run_with_failure_refines(self):
        compiled = compile_source(SRC, "ocelot")
        site = sorted(compiled.detector_plan().checks)[0]
        result = run_with(
            compiled,
            ScheduledFailures([FailurePoint(chain=site)], off_cycles=2500),
        )
        verdict = check_refinement(compiled, result.trace, env_factory)
        assert verdict.refined, verdict.target
        assert verdict.witness_tau is not None and verdict.witness_tau > 0

    def test_torn_jit_run_does_not_refine(self):
        compiled = compile_source(SRC, "jit")
        site = sorted(compiled.detector_plan().checks)[0]
        result = run_with(
            compiled,
            ScheduledFailures([FailurePoint(chain=site)], off_cycles=2500),
        )
        assert result.stats.violations >= 1
        verdict = check_refinement(compiled, result.trace, env_factory)
        assert not verdict.refined
        assert verdict.candidates_tried  # it genuinely searched

    def test_suffix_restriction(self):
        compiled = compile_source(SRC, "ocelot")
        result = run_with(compiled, ContinuousPower())
        verdict = check_refinement(
            compiled, result.trace, env_factory, match_suffix_len=1
        )
        assert verdict.refined
        assert len(verdict.target) == 1
