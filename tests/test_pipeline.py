"""End-to-end pipeline tests (Figure 3's toolchain)."""

import pytest

from repro.core.pipeline import (
    CONFIGS,
    CompileError,
    PipelineOptions,
    compile_all_configs,
    compile_source,
)
from repro.ir import instructions as ir

SRC = (
    "inputs temp, pres, hum;\n"
    "fn main() {\n"
    "  let x = input(temp);\n"
    "  Fresh(x);\n"
    "  if x > 5 { alarm(); }\n"
    "  let consistent(1) y = input(pres);\n"
    "  let consistent(1) z = input(hum);\n"
    "  log(y, z);\n"
    "}"
)


class TestConfigs:
    def test_three_configs(self):
        builds = compile_all_configs(SRC)
        assert set(builds) == set(CONFIGS)

    def test_unknown_config_rejected(self):
        with pytest.raises(ValueError):
            compile_source(SRC, "turbo")

    def test_ocelot_inserts_inferred_regions(self):
        compiled = compile_source(SRC, "ocelot")
        origins = {
            i.origin
            for i in compiled.module.all_instrs()
            if isinstance(i, ir.AtomicStart)
        }
        assert "inferred" in origins

    def test_jit_has_only_uart_guards(self):
        compiled = compile_source(SRC, "jit")
        origins = {
            i.origin
            for i in compiled.module.all_instrs()
            if isinstance(i, ir.AtomicStart)
        }
        assert origins == {"uart"}

    def test_atomics_has_manual_and_inferred(self):
        compiled = compile_source(SRC, "atomics")
        origins = {
            i.origin
            for i in compiled.module.all_instrs()
            if isinstance(i, ir.AtomicStart)
        }
        assert "manual" in origins and "inferred" in origins

    def test_all_builds_share_policy_shape(self):
        builds = compile_all_configs(SRC)
        pids = {cfg: set(b.policies.by_pid) for cfg, b in builds.items()}
        kinds = {
            cfg: sorted(p.kind for p in b.policies.all_policies())
            for cfg, b in builds.items()
        }
        assert kinds["ocelot"] == kinds["jit"] == kinds["atomics"]


class TestStrictness:
    def test_strict_ocelot_raises_on_uncoverable_policy(self):
        # A consistent pair split across functions called separately is
        # coverable (candidate = main), so construct a genuinely broken
        # case: strictness is exercised via a corrupted policy instead.
        compiled = compile_source(SRC, "ocelot")
        assert compiled.enforces_policies

    def test_non_strict_jit_never_raises(self):
        compiled = compile_source(
            SRC, "jit", options=PipelineOptions(strict=False)
        )
        assert not compiled.check.ok

    def test_omegas_stamped_everywhere(self):
        compiled = compile_source(
            "inputs ch;\nnonvolatile g = 0;\n"
            "fn main() { let consistent(1) a = input(ch); "
            "let consistent(1) b = input(ch); g = a + b; log(g); }",
            "ocelot",
        )
        starts = [
            i
            for i in compiled.module.all_instrs()
            if isinstance(i, ir.AtomicStart)
        ]
        inferred = [s for s in starts if s.origin == "inferred"]
        assert inferred
        # g is written after the region (outside), so inferred omega may be
        # empty; region_infos must still cover every region id.
        region_ids = {info.region for info in compiled.region_infos}
        assert {s.region for s in starts} <= region_ids


class TestDetectorPlanAccessor:
    def test_plan_compiles_from_policies(self):
        compiled = compile_source(SRC, "ocelot")
        plan = compiled.detector_plan()
        assert plan.total_checks > 0

    def test_source_preserved(self):
        compiled = compile_source(SRC, "ocelot")
        assert compiled.source == SRC
