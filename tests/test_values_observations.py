"""Runtime value and observation container tests."""

from repro.ir.instructions import InstrId
from repro.runtime import observations as obs
from repro.runtime.values import (
    NO_TAINT,
    InputEvent,
    RefValue,
    TVal,
    merge_taint,
)


class TestTVal:
    def test_of_coerces_bool(self):
        assert TVal.of(True).value == 1
        assert TVal.of(False).value == 0

    def test_as_bool(self):
        assert TVal(5).as_bool is True
        assert TVal(0).as_bool is False

    def test_with_taint_preserves_value(self):
        event = InputEvent(uid=InstrId("f", 1), channel="ch", tau=10)
        tv = TVal(7).with_taint(frozenset({event}))
        assert tv.value == 7
        assert event in tv.taint

    def test_values_are_immutable_and_hashable(self):
        a = TVal(3)
        b = TVal(3)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1


class TestMergeTaint:
    def test_empty_merge(self):
        assert merge_taint() == NO_TAINT
        assert merge_taint(NO_TAINT, NO_TAINT) == NO_TAINT

    def test_union(self):
        e1 = InputEvent(uid=InstrId("f", 1), channel="a", tau=1)
        e2 = InputEvent(uid=InstrId("f", 2), channel="b", tau=2)
        merged = merge_taint(frozenset({e1}), frozenset({e2}))
        assert merged == frozenset({e1, e2})

    def test_merge_with_empty_returns_other(self):
        e1 = InputEvent(uid=InstrId("f", 1), channel="a", tau=1)
        taint = frozenset({e1})
        assert merge_taint(taint, NO_TAINT) == taint


class TestRefValue:
    def test_str(self):
        assert str(RefValue(depth=0, name="x")) == "&[0]x"


class TestTrace:
    def mk_trace(self):
        trace = obs.Trace()
        trace.emit(obs.InputObs(tau=1, uid=InstrId("m", 1), channel="a", value=5))
        trace.emit(obs.OutputObs(tau=2, uid=InstrId("m", 2), op="log", values=(5,)))
        trace.emit(obs.RebootObs(tau=10, off_cycles=8, mode="jit"))
        trace.emit(
            obs.ViolationObs(
                tau=11, uid=InstrId("m", 3), pid="p", kind="fresh", missing=()
            )
        )
        return trace

    def test_typed_accessors(self):
        trace = self.mk_trace()
        assert len(trace.inputs) == 1
        assert len(trace.outputs) == 1
        assert len(trace.reboots) == 1
        assert len(trace.violations) == 1

    def test_iteration_and_len(self):
        trace = self.mk_trace()
        assert len(trace) == 4
        assert [e.tau for e in trace] == [1, 2, 10, 11]

    def test_segment_by_tau(self):
        trace = self.mk_trace()
        segment = trace.segment(2, 10)
        assert [e.tau for e in segment] == [2, 10]


class TestRunStats:
    def test_total_cycles(self):
        stats = obs.RunStats(cycles_on=10, cycles_off=90)
        assert stats.total_cycles == 100
