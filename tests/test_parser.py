"""Parser unit tests."""

import pytest

from repro.lang import ast
from repro.lang.errors import ParseError, SemanticError
from repro.lang.parser import parse_function, parse_program


def parse_main_body(body: str) -> list[ast.Stmt]:
    program = parse_program(f"inputs ch;\nfn main() {{\n{body}\n}}")
    return program.functions["main"].body


class TestDeclarations:
    def test_inputs_declaration(self):
        program = parse_program("inputs a, b, c;\nfn main() { skip; }")
        assert program.channels == ["a", "b", "c"]

    def test_nonvolatile_scalar(self):
        program = parse_program("nonvolatile x = 42;\nfn main() { skip; }")
        assert program.globals["x"].init == 42

    def test_nonvolatile_negative_init(self):
        program = parse_program("nonvolatile x = -3;\nfn main() { skip; }")
        assert program.globals["x"].init == -3

    def test_nonvolatile_default_zero(self):
        program = parse_program("nonvolatile x;\nfn main() { skip; }")
        assert program.globals["x"].init == 0

    def test_array_declaration(self):
        program = parse_program("nonvolatile a[4];\nfn main() { skip; }")
        assert program.arrays["a"].size == 4
        assert program.arrays["a"].initial_values() == [0, 0, 0, 0]

    def test_array_with_initializer(self):
        program = parse_program(
            "nonvolatile a[3] = [1, -2, 3];\nfn main() { skip; }"
        )
        assert program.arrays["a"].initial_values() == [1, -2, 3]

    def test_array_initializer_length_mismatch(self):
        with pytest.raises(SemanticError):
            parse_program("nonvolatile a[2] = [1, 2, 3];\nfn main() { skip; }")

    def test_duplicate_function_rejected(self):
        with pytest.raises(SemanticError):
            parse_program("fn f() { skip; }\nfn f() { skip; }")

    def test_duplicate_nonvolatile_rejected(self):
        with pytest.raises(SemanticError):
            parse_program("nonvolatile x = 1;\nnonvolatile x = 2;\nfn main() { skip; }")


class TestFunctions:
    def test_params(self):
        func = parse_function("fn f(a, b) { return a + b; }")
        assert func.param_names == ["a", "b"]

    def test_by_ref_param(self):
        func = parse_function("fn f(&out) { *out = 1; }")
        assert func.params[0].by_ref

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_function("fn f() { skip; } extra")


class TestStatements:
    def test_let(self):
        (stmt,) = parse_main_body("let x = 1;")
        assert isinstance(stmt, ast.Let) and stmt.annot is None

    def test_let_fresh(self):
        (stmt,) = parse_main_body("let fresh x = input(ch);")
        assert isinstance(stmt, ast.Let)
        assert stmt.annot == ast.AnnotKind.FRESH

    def test_let_consistent(self):
        (stmt,) = parse_main_body("let consistent(3) x = input(ch);")
        assert stmt.annot == ast.AnnotKind.CONSISTENT
        assert stmt.set_id == 3

    def test_fresh_statement_annotation(self):
        stmts = parse_main_body("let x = 1; Fresh(x);")
        assert isinstance(stmts[1], ast.AnnotStmt)
        assert stmts[1].kind == ast.AnnotKind.FRESH
        assert stmts[1].var == "x"

    def test_consistent_statement_annotation(self):
        stmts = parse_main_body("let x = 1; Consistent(x, 2);")
        assert stmts[1].kind == ast.AnnotKind.CONSISTENT
        assert stmts[1].set_id == 2

    def test_freshconsistent_annotation(self):
        stmts = parse_main_body("let x = 1; FreshConsistent(x, 1);")
        assert stmts[1].kind == ast.AnnotKind.FRESHCON

    def test_assignment(self):
        stmts = parse_main_body("let x = 1; x = x + 1;")
        assert isinstance(stmts[1], ast.Assign)

    def test_store_ref(self):
        func = parse_function("fn f(&p) { *p = 9; }")
        assert isinstance(func.body[0], ast.StoreRef)

    def test_array_store(self):
        program = parse_program(
            "nonvolatile a[2];\nfn main() { a[0] = 5; }"
        )
        stmt = program.functions["main"].body[0]
        assert isinstance(stmt, ast.StoreIndex)

    def test_if_else(self):
        (stmt,) = parse_main_body("if 1 < 2 { skip; } else { alarm(); }")
        assert isinstance(stmt, ast.If)
        assert len(stmt.then_body) == 1 and len(stmt.else_body) == 1

    def test_else_if_chain(self):
        (stmt,) = parse_main_body(
            "if 1 < 2 { skip; } else if 2 < 3 { skip; } else { skip; }"
        )
        assert isinstance(stmt.else_body[0], ast.If)

    def test_repeat(self):
        (stmt,) = parse_main_body("repeat 4 { work(1); }")
        assert isinstance(stmt, ast.Repeat) and stmt.count == 4

    def test_repeat_zero_rejected(self):
        with pytest.raises(SemanticError):
            parse_main_body("repeat 0 { skip; }")

    def test_atomic_block(self):
        (stmt,) = parse_main_body("atomic { skip; }")
        assert isinstance(stmt, ast.Atomic)

    def test_return_with_and_without_value(self):
        func = parse_function("fn f() { return; }")
        assert func.body[0].expr is None
        func = parse_function("fn f() { return 3; }")
        assert func.body[0].expr.value == 3

    def test_call_statement(self):
        (stmt,) = parse_main_body("log(1, 2);")
        assert isinstance(stmt, ast.ExprStmt)
        assert stmt.expr.func == "log"


class TestExpressions:
    def parse_expr(self, text: str) -> ast.Expr:
        (stmt,) = parse_main_body(f"let x = {text};")
        return stmt.expr

    def test_precedence_mul_over_add(self):
        expr = self.parse_expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.rhs.op == "*"

    def test_precedence_cmp_over_and(self):
        expr = self.parse_expr("1 < 2 && 3 < 4")
        assert expr.op == "&&"
        assert expr.lhs.op == "<"

    def test_precedence_and_over_or(self):
        expr = self.parse_expr("true || false && true")
        assert expr.op == "||"

    def test_parentheses(self):
        expr = self.parse_expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.lhs.op == "+"

    def test_unary_minus_and_not(self):
        assert self.parse_expr("-5").op == "-"
        assert self.parse_expr("!true").op == "!"

    def test_input_expression(self):
        expr = self.parse_expr("input(ch)")
        assert isinstance(expr, ast.Input) and expr.channel == "ch"

    def test_nested_call(self):
        expr = self.parse_expr("min(1, max(2, 3))")
        assert expr.func == "min"
        assert expr.args[1].func == "max"

    def test_array_index_expression(self):
        program = parse_program("nonvolatile a[2];\nfn main() { let x = a[1]; }")
        expr = program.functions["main"].body[0].expr
        assert isinstance(expr, ast.Index)

    def test_left_associativity(self):
        expr = self.parse_expr("10 - 3 - 2")
        assert expr.op == "-"
        assert expr.lhs.op == "-"
        assert expr.rhs.value == 2


class TestLabels:
    def test_labels_assigned_in_lexical_order(self):
        program = parse_program(
            "inputs ch;\nfn main() { let x = 1; if x < 2 { alarm(); } log(x); }"
        )
        labels = [s.label for s in ast.walk_stmts(program.functions["main"].body)]
        assert labels == sorted(labels)
        assert labels[0] == 1

    def test_find_labeled(self):
        program = parse_program("fn main() { skip; skip; }")
        stmt = ast.find_labeled(program.functions["main"], 2)
        assert stmt.label == 2


class TestParseErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "fn main() { let = 1; }",
            "fn main() { if { skip; } }",
            "fn main() { let x = ; }",
            "fn main() { x + ; }",
            "fn main() { let x = 1 }",
            "fn () { skip; }",
            "inputs ;",
        ],
    )
    def test_malformed_inputs_raise(self, source):
        with pytest.raises(ParseError):
            parse_program(source)
