"""Hypothesis crosschecks: verifier vs optimizer vs engines.

Three independent oracles are played against each other on generated
programs:

* the **check optimizer**'s static eliminations vs the verifier's
  exhaustive exploration of the baseline plan -- an eliminated check
  must never fire under any failure schedule within the bound;
* the verifier's **pruned** search vs the unpruned one -- identical
  verdicts from strictly fewer explored states whenever anything was
  pruned;
* the verifier's **counterexamples** vs the production replay path on
  both engines -- a found schedule must reproduce the same violation
  bit-exactly through a stock :class:`ScheduledFailures` supply.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.pipeline import compile_source
from repro.ir.opt.crosscheck import crosscheck_optimized_plan
from repro.runtime.engine import ENGINE_FAST, ENGINE_REFERENCE
from repro.sensors.environment import Environment
from repro.verify import (
    VERDICT_COUNTEREXAMPLE,
    VerifyBounds,
    replay_schedule,
    verify_program,
)
from tests.strategies import program_sources

#: Generated programs are tiny, so a small bound is already exhaustive
#: over every activation prefix that matters.
BOUNDS = VerifyBounds(
    max_activations=1, max_failures=1, max_cycles=50_000, max_states=20_000
)


def _env(compiled, value: int) -> Environment:
    return Environment.constant_for(compiled.module.channels, value)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    source=program_sources(min_annotations=1),
    config=st.sampled_from(["ocelot-opt", "jit-opt"]),
    value=st.integers(0, 5),
)
def test_eliminated_checks_never_fire(source, config, value):
    compiled = compile_source(source, config)
    result = crosscheck_optimized_plan(
        compiled, _env(compiled, value), bounds=BOUNDS
    )
    assert result.complete, f"search cut early\n{source}"
    assert result.ok, f"{result.render()}\n{source}"


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    source=program_sources(min_annotations=1),
    config=st.sampled_from(["ocelot", "atomics"]),
    value=st.integers(0, 5),
)
def test_prune_parity_on_random_programs(source, config, value):
    compiled = compile_source(source, config)
    env = _env(compiled, value)
    pruned = verify_program(compiled, env, BOUNDS, prune=True)
    full = verify_program(compiled, env, BOUNDS, prune=False)
    assert pruned.kind == full.kind, f"{pruned.kind} != {full.kind}\n{source}"
    assert pruned.violation == full.violation
    assert pruned.stats.explored <= full.stats.explored
    # The no-op filter is analysis-independent and runs in both searches;
    # only region pruning is gated on the flag, so only it guarantees a
    # strictly smaller state space.
    if pruned.stats.pruned:
        assert pruned.stats.explored < full.stats.explored


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    source=program_sources(min_annotations=1),
    value=st.integers(0, 5),
)
def test_counterexamples_replay_on_both_engines(source, value):
    compiled = compile_source(source, "jit")
    env = _env(compiled, value)
    verdict = verify_program(compiled, env, BOUNDS)
    if verdict.kind != VERDICT_COUNTEREXAMPLE:
        return
    outcomes = []
    for engine in (ENGINE_FAST, ENGINE_REFERENCE):
        result = replay_schedule(
            compiled, env, verdict.counterexample, engine=engine,
            stop_at_violation=False,
        )
        assert result.violating, f"{engine} lost the violation\n{source}"
        outcomes.append(
            [
                (v.pid, v.kind, v.uid, v.tau, tuple(v.missing))
                for v in result.violations
            ]
        )
    assert outcomes[0] == outcomes[1], source
