"""Lowering tests: AST -> IR CFG."""

import pytest

from repro.ir import instructions as ir
from repro.ir.lowering import LoweringOptions, lower_program
from repro.ir.verify import verify_module
from repro.lang.parser import parse_program


def lower(source: str, **opts):
    options = LoweringOptions(**opts) if opts else None
    module = lower_program(parse_program(source), options=options)
    verify_module(module)
    return module


def instrs_of(module, func="main"):
    return list(module.function(func).all_instrs())


class TestExpressionFlattening:
    def test_input_hoisted_to_temp(self):
        module = lower("inputs ch;\nfn main() { let x = input(ch) + 1; }")
        inputs = [i for i in instrs_of(module) if isinstance(i, ir.InputInstr)]
        assert len(inputs) == 1
        assert inputs[0].dest.startswith("%t")

    def test_nested_call_hoisted(self):
        module = lower(
            "fn f() { return 1; }\nfn main() { let x = f() + f(); }"
        )
        calls = [i for i in instrs_of(module) if isinstance(i, ir.CallInstr)]
        assert len(calls) == 2

    def test_pure_builtin_stays_in_tree(self):
        module = lower("fn main() { let x = min(1, 2); }")
        calls = [i for i in instrs_of(module) if isinstance(i, ir.CallInstr)]
        assert calls == []

    def test_effect_builtin_in_expression_rejected(self):
        from repro.lang.errors import SemanticError

        with pytest.raises(SemanticError):
            lower("fn main() { let x = alarm(); }")


class TestControlFlow:
    def test_if_creates_branch_and_join(self):
        module = lower("fn main() { if 1 < 2 { alarm(); } log(1); }")
        func = module.function("main")
        branches = [
            b for b in func.blocks.values()
            if isinstance(b.terminator, ir.Branch)
        ]
        assert len(branches) == 1

    def test_single_exit_landing_pad(self):
        module = lower(
            "fn f(a) { if a > 0 { return 1; } return 2; }\n"
            "fn main() { let x = f(3); }"
        )
        func = module.function("f")
        rets = [
            b.name for b in func.blocks.values()
            if isinstance(b.terminator, ir.RetInstr)
        ]
        assert rets == [func.exit]

    def test_unreachable_code_pruned(self):
        module = lower("fn f() { return 1; skip; }\nfn main() { let x = f(); }")
        func = module.function("f")
        skips = [i for i in func.all_instrs() if isinstance(i, ir.SkipInstr)]
        assert skips == []

    def test_repeat_unrolled_by_default(self):
        module = lower("inputs ch;\nfn main() { repeat 3 { let x = input(ch); } }")
        inputs = [i for i in instrs_of(module) if isinstance(i, ir.InputInstr)]
        assert len(inputs) == 3

    def test_repeat_as_loop_when_not_unrolling(self):
        module = lower(
            "inputs ch;\nfn main() { repeat 3 { let x = input(ch); } }",
            unroll_loops=False,
        )
        inputs = [i for i in instrs_of(module) if isinstance(i, ir.InputInstr)]
        assert len(inputs) == 1
        func = module.function("main")
        # A genuine loop: some block jumps backwards to the header.
        assert any("loop_head" in b for b in func.blocks)


class TestAnnotations:
    def test_let_fresh_emits_annot_after_def(self):
        module = lower("inputs ch;\nfn main() { let fresh x = input(ch); }")
        kinds = [type(i).__name__ for i in instrs_of(module)]
        assign_idx = kinds.index("Assign", 1)  # skip %ret init if present
        annot = [i for i in instrs_of(module) if isinstance(i, ir.AnnotInstr)]
        assert len(annot) == 1
        assert annot[0].kind == "fresh"

    def test_freshconsistent_splits_into_two(self):
        module = lower(
            "inputs ch;\nfn main() { let x = input(ch); FreshConsistent(x, 1); }"
        )
        annots = [i for i in instrs_of(module) if isinstance(i, ir.AnnotInstr)]
        assert [a.kind for a in annots] == ["fresh", "consistent"]
        assert annots[1].set_id == 1


class TestRegionsAndGuards:
    def test_manual_atomic_brackets(self):
        module = lower("fn main() { atomic { skip; } }")
        starts = [i for i in instrs_of(module) if isinstance(i, ir.AtomicStart)]
        ends = [i for i in instrs_of(module) if isinstance(i, ir.AtomicEnd)]
        assert len(starts) == 1 and len(ends) == 1
        assert starts[0].origin == "manual"

    def test_manual_atomics_stripped_for_jit(self):
        module = lower(
            "fn main() { atomic { skip; } }", keep_manual_atomics=False,
            guard_outputs=False,
        )
        starts = [i for i in instrs_of(module) if isinstance(i, ir.AtomicStart)]
        assert starts == []

    def test_uart_guard_wraps_outputs(self):
        module = lower("fn main() { log(1); }")
        instrs = [i for i in instrs_of(module)]
        kinds = [type(i).__name__ for i in instrs]
        out_idx = kinds.index("OutputInstr")
        assert isinstance(instrs[out_idx - 1], ir.AtomicStart)
        assert instrs[out_idx - 1].origin == "uart"
        assert isinstance(instrs[out_idx + 1], ir.AtomicEnd)

    def test_guard_disabled(self):
        module = lower("fn main() { log(1); }", guard_outputs=False)
        starts = [i for i in instrs_of(module) if isinstance(i, ir.AtomicStart)]
        assert starts == []

    def test_return_inside_atomic_closes_region(self):
        module = lower(
            "fn f() { atomic { return 1; } }\nfn main() { let x = f(); }"
        )
        # Verifier would have rejected an unbalanced function; double-check
        # the emitted end comes before the exit jump.
        func = module.function("f")
        for block in func.blocks.values():
            depth = 0
            for instr in block.instrs:
                if isinstance(instr, ir.AtomicStart):
                    depth += 1
                elif isinstance(instr, ir.AtomicEnd):
                    depth -= 1
            assert depth == 0


class TestScopes:
    def test_global_assign_marked_nv(self):
        module = lower("nonvolatile g = 0;\nfn main() { g = g + 1; }")
        assigns = [i for i in instrs_of(module) if isinstance(i, ir.Assign)]
        (g_assign,) = [a for a in assigns if a.dest == "g"]
        assert g_assign.scope == ir.SCOPE_GLOBAL

    def test_local_shadows_global(self):
        module = lower("nonvolatile g = 0;\nfn main() { let g = 1; g = 2; }")
        assigns = [i for i in instrs_of(module) if isinstance(i, ir.Assign)]
        assert all(a.scope == ir.SCOPE_LOCAL for a in assigns if a.dest == "g")

    def test_ret_slot_initialized_when_needed(self):
        module = lower("fn f(a) { if a > 0 { return 1; } }\nfn main() { let x = f(1); }")
        func = module.function("f")
        first = func.blocks[func.entry].instrs[0]
        assert isinstance(first, ir.Assign) and first.dest == "%ret"


class TestUidDiscipline:
    def test_uids_unique_per_function(self):
        module = lower(
            "inputs ch;\nfn main() { repeat 4 { let x = input(ch); log(x); } }"
        )
        for func in module.functions.values():
            labels = [i.uid.label for i in func.all_instrs()]
            assert len(labels) == len(set(labels))

    def test_position_of_round_trips(self):
        module = lower("fn main() { skip; skip; }")
        func = module.function("main")
        for instr in func.all_instrs():
            block, idx = func.position_of(instr.uid)
            found = (
                func.blocks[block].instrs[idx]
                if idx < len(func.blocks[block].instrs)
                else func.blocks[block].terminator
            )
            assert found.uid == instr.uid
