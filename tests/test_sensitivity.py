"""Sensitivity-study tests."""

import pytest

from repro.eval.sensitivity import (
    sensitivity_tables,
    sweep_capacity,
    sweep_harvest_rate,
)


@pytest.fixture(scope="module")
def harvest_points():
    return sweep_harvest_rate(rates=(150, 600), budget=80_000)


@pytest.fixture(scope="module")
def capacity_points():
    return sweep_capacity(capacities=(2400, 4500), budget=100_000)


class TestHarvestSweep:
    def test_off_share_decreases_with_rate(self, harvest_points):
        shares = [p.off_share("jit") for p in harvest_points]
        assert shares[0] > shares[-1]

    def test_charging_dominates_at_low_rates(self, harvest_points):
        low = harvest_points[0]
        assert low.off_share("jit") > 0.5
        assert low.off_share("ocelot") > 0.5


class TestCapacitySweep:
    def test_ocelot_zero_at_every_size(self, capacity_points):
        for point in capacity_points:
            assert point.ocelot_violation_rate == 0.0

    def test_jit_rate_decreases_with_capacity(self, capacity_points):
        assert (
            capacity_points[0].jit_violation_rate
            >= capacity_points[-1].jit_violation_rate
        )

    def test_jit_violates_at_small_capacity(self, capacity_points):
        assert capacity_points[0].jit_violation_rate > 0.0


class TestTables:
    def test_render(self):
        tables = sensitivity_tables()
        assert len(tables) == 2
        for table in tables:
            assert table.rows
            assert "Sensitivity" in table.render_text()
