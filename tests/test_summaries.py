"""Function-summary structure tests (Figure 5)."""

from repro.analysis.provenance import Chain
from repro.analysis.summaries import (
    SINK_RET,
    FromArg,
    FromLocal,
    FromRet,
    FunctionSummaries,
    InInfo,
    TaintMap,
    call_chain,
    sink_ref,
)
from repro.analysis.taint import analyze_module
from repro.ir.instructions import InstrId
from repro.ir.lowering import lower_program
from repro.lang.parser import parse_program


def summaries_for(source: str):
    module = lower_program(parse_program(source))
    return module, analyze_module(module).summaries


class TestStructures:
    def test_taint_map_add_get(self):
        tmap = TaintMap()
        info = InInfo(
            input=InstrId("get", 3),
            from_tp=FromLocal(3),
            chain=Chain(ids=(InstrId("get", 3),)),
        )
        tmap.add(SINK_RET, info)
        assert info in tmap.get(SINK_RET)
        assert tmap.sinks() == [SINK_RET]
        assert bool(tmap)

    def test_empty_map_is_falsy(self):
        assert not TaintMap()

    def test_sink_ref_naming(self):
        assert sink_ref("out") == "&out"

    def test_outputs_for_merges_local_and_caller(self):
        summaries = FunctionSummaries()
        summary = summaries.of("f")
        site = InstrId("main", 2)
        local_info = InInfo(
            input=InstrId("f", 1),
            from_tp=FromLocal(1),
            chain=Chain(ids=(site, InstrId("f", 1))),
        )
        caller_info = InInfo(
            input=InstrId("main", 9),
            from_tp=FromArg(site),
            chain=Chain(ids=(InstrId("main", 9),)),
        )
        summary.local.add(SINK_RET, local_info)
        summary.caller(site).add(SINK_RET, caller_info)
        merged = summary.outputs_for(site, SINK_RET)
        assert merged == {local_info, caller_info}

    def test_call_chain_returns_resolved(self):
        chain = Chain(ids=(InstrId("main", 2), InstrId("get", 3)))
        info = InInfo(input=InstrId("get", 3), from_tp=FromRet(InstrId("main", 2)), chain=chain)
        assert call_chain(info) == chain


class TestPaperExamples:
    def test_pres_style_local_summary(self):
        """Figure 5's pres example: input generated locally flows to ret."""
        module, summaries = summaries_for(
            "inputs sense;\n"
            "fn pres() { let p = input(sense); let p2 = p + 1; return p2; }\n"
            "fn main() { let y = pres(); Fresh(y); log(y); }"
        )
        pres = summaries.of("pres")
        entries = pres.local.get(SINK_RET)
        assert entries
        entry = next(iter(entries))
        assert isinstance(entry.from_tp, FromLocal)
        assert entry.input.func == "pres"

    def test_norm_style_caller_summary(self):
        """Figure 5's norm example: argument taint flows back via ret,
        recorded per calling context (argBy)."""
        module, summaries = summaries_for(
            "inputs sense;\n"
            "fn norm(v) { return v / 2; }\n"
            "fn main() { let t = input(sense); let n = norm(t); "
            "Fresh(n); log(n); }"
        )
        norm = summaries.of("norm")
        assert len(norm.callers) == 1
        site, tmap = next(iter(norm.callers.items()))
        ret_rows = tmap.get(SINK_RET)
        assert ret_rows
        assert any(isinstance(r.from_tp, FromArg) for r in ret_rows)
        arg_rows = tmap.get("v")
        assert arg_rows  # how the taint came in

    def test_pbr_summary(self):
        module, summaries = summaries_for(
            "inputs sense;\n"
            "fn fill(&out) { *out = input(sense); }\n"
            "fn main() { let x = 0; fill(&x); Fresh(x); log(x); }"
        )
        fill = summaries.of("fill")
        rows = fill.local.get(sink_ref("out"))
        assert rows
        assert next(iter(rows)).input.func == "fill"

    def test_all_entries_flattens(self):
        module, summaries = summaries_for(
            "inputs sense;\n"
            "fn get() { let v = input(sense); return v; }\n"
            "fn main() { let x = get(); Fresh(x); log(x); }"
        )
        rows = summaries.all_entries()
        assert rows
        functions = {row[0] for row in rows}
        assert "get" in functions
        for _func, scope, _sink, info in rows:
            assert scope == "local" or scope.startswith("(")
            assert info.chain.op == info.input
