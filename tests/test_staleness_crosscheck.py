"""Exhaustive-search crosschecks of the staleness linter's verdicts.

Companion to ``tests/test_verify_crosscheck.py``: the linter's SAFE and
DOOMED claims are replayed against the bounded model checker's
exhaustive collect-all exploration -- SAFE checks must never fire in the
explored space, DOOMED checks must fire somewhere in it.  Runs on the
bundled apps under every paper config, then on generated programs.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.crosscheck import crosscheck_staleness
from repro.apps import BENCHMARKS
from repro.core.pipeline import compile_source
from repro.sensors.environment import Environment
from repro.verify import VerifyBounds
from tests.strategies import program_sources

#: Generated programs are tiny, so one failure and a small state budget
#: already cover every schedule that matters.
BOUNDS = VerifyBounds(
    max_activations=1, max_failures=1, max_cycles=50_000, max_states=20_000
)

#: The apps are bigger; give the search headroom so ``complete`` holds.
APP_BOUNDS = VerifyBounds(
    max_activations=1, max_failures=1, max_cycles=200_000, max_states=100_000
)

PAPER_CONFIGS = ("ocelot", "jit", "atomics")


def _env(compiled, value: int) -> Environment:
    return Environment.constant_for(compiled.module.channels, value)


@pytest.mark.parametrize("config", PAPER_CONFIGS)
@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_bundled_apps_verdicts_sound(name, config):
    compiled = compile_source(BENCHMARKS[name].source, config)
    result = crosscheck_staleness(
        compiled, _env(compiled, 0), bounds=APP_BOUNDS
    )
    assert result.complete, f"{name}/{config}: search cut early"
    assert result.ok, f"{name}/{config}:\n{result.render()}"


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    source=program_sources(min_annotations=1),
    config=st.sampled_from(PAPER_CONFIGS),
    value=st.integers(0, 3),
)
def test_random_programs_verdicts_sound(source, config, value):
    compiled = compile_source(source, config)
    result = crosscheck_staleness(compiled, _env(compiled, value), bounds=BOUNDS)
    assert result.complete, f"search cut early\n{source}"
    assert result.ok, f"{result.render()}\n{source}"


def test_render_names_offenders():
    compiled = compile_source(BENCHMARKS["cem"].source, "ocelot")
    result = crosscheck_staleness(
        compiled, _env(compiled, 0), bounds=APP_BOUNDS
    )
    text = result.render()
    assert "staleness crosscheck: ok" in text
