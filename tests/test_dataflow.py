"""The generic dataflow framework and its convergence guarantees."""

from __future__ import annotations

import pytest

from repro.analysis.availability import analyze_availability
from repro.analysis.dataflow import (
    BACKWARD,
    FORWARD,
    AllPathsLattice,
    ConvergenceError,
    FunctionDataflow,
    ReachInfo,
    SetIntersectLattice,
    SetUnionLattice,
    stabilize,
)
from repro.analysis.provenance import Chain
from repro.analysis.taint import TaintAnalysis, analyze_module
from repro.ir.lowering import lower_program
from repro.lang.parser import parse_program

#: A diamond with a loop: entry -> branch -> (then | else) -> join -> exit,
#: where the then-arm loops while it holds.
DIAMOND_SRC = """\
inputs ch;

fn main() {
  let c = input(ch);
  let i = 0;
  if c > 0 {
    log(c);
  } else {
    log(0);
  }
  log(i);
}
"""

#: Global taint feedback: `h` reads `g` *before* `g` is written from an
#: input, so the read only sees the taint on the second global round.
FEEDBACK_SRC = """\
inputs ch;
nonvolatile g = 0;

fn main() {
  let h = g;
  g = input(ch);
  log(h);
}
"""


def _main_func(src: str):
    return lower_program(parse_program(src)).function("main")


class TestSolver:
    def test_forward_may_union_at_joins(self):
        func = _main_func(DIAMOND_SRC)
        flow = FunctionDataflow(func)

        class Collect:
            name = "collect-blocks"
            direction = FORWARD
            lattice = SetUnionLattice()

            def boundary(self):
                return frozenset()

            def transfer(self, block_name, fact):
                return fact | {block_name}

        solution = flow.solve(Collect())
        # The exit block's flow-in fact saw both arms of the branch.
        exit_in = solution.in_fact(func.exit)
        arms = [
            name
            for name in func.blocks
            if name not in (func.entry, func.exit)
        ]
        assert any(arm in exit_in for arm in arms)
        assert func.entry in exit_in
        # Forward out-facts include the block itself.
        assert func.exit in solution.out_fact(func.exit)

    def test_forward_must_intersection_at_joins(self):
        func = _main_func(DIAMOND_SRC)
        flow = FunctionDataflow(func)

        class ArmOnly:
            """Each arm generates its own token; the join must keep none."""

            name = "arm-tokens"
            direction = FORWARD
            lattice = SetIntersectLattice()

            def boundary(self):
                return frozenset()

            def transfer(self, block_name, fact):
                succs = flow.successors[block_name]
                if len(succs) == 1 and succs[0] != func.exit:
                    return fact | {block_name}
                return fact

        solution = flow.solve(ArmOnly())
        join_blocks = [
            name
            for name, preds in flow.predecessors.items()
            if len(preds) >= 2
        ]
        assert join_blocks, "diamond program should have a join"
        for join in join_blocks:
            assert solution.in_fact(join) == frozenset()

    def test_backward_all_paths(self):
        func = _main_func(DIAMOND_SRC)
        flow = FunctionDataflow(func)
        branch_block = next(
            name
            for name, succs in flow.successors.items()
            if len(succs) == 2
        )
        one_arm = flow.successors[branch_block][0]

        class HitsArm:
            name = "hits-arm"
            direction = BACKWARD
            lattice = AllPathsLattice()

            def boundary(self):
                return False

            def transfer(self, block_name, fact):
                return block_name == one_arm or fact

        solution = flow.solve(HitsArm())
        # Only one arm hits the site, so at the branch not-all-paths hold.
        arm_facts = [
            solution.out_fact(succ, False)
            for succ in flow.successors[branch_block]
        ]
        assert arm_facts.count(True) == 1

    def test_solver_round_cap_raises_structured_error(self):
        func = _main_func(DIAMOND_SRC)
        flow = FunctionDataflow(func)

        class NonMonotone:
            name = "runaway"
            direction = FORWARD
            lattice = SetUnionLattice()

            def __init__(self):
                self.tick = 0

            def boundary(self):
                return frozenset()

            def transfer(self, block_name, fact):
                self.tick += 1
                return fact | {self.tick}  # grows forever

        with pytest.raises(ConvergenceError) as err:
            flow.solve(NonMonotone(), max_rounds=5)
        assert err.value.analysis == "runaway"
        assert err.value.scope == "main"
        assert err.value.rounds == 5
        assert err.value.to_diagnostic()["analysis"] == "runaway"

    def test_reach_info(self):
        func = _main_func(DIAMOND_SRC)
        flow = FunctionDataflow(func)
        reach = ReachInfo.of(flow)
        assert func.exit in reach.reaches[func.entry]
        assert func.entry in reach.reached_by[func.exit]
        between = reach.between(func.entry, func.exit)
        assert func.entry in between and func.exit in between


class TestStabilize:
    def test_runs_until_snapshot_stable(self):
        state = []

        def step():
            if len(state) < 3:
                state.append(len(state))

        rounds = stabilize(step, lambda: len(state), "toy", "unit")
        # 3 growth rounds + 1 confirming round.
        assert rounds == 4
        assert state == [0, 1, 2]

    def test_round_cap_raises(self):
        state = []

        def step():
            state.append(0)

        with pytest.raises(ConvergenceError) as err:
            stabilize(step, lambda: len(state), "toy", "unit", max_rounds=3)
        assert err.value.analysis == "toy"
        assert err.value.rounds == 3


class TestTaintOnFramework:
    """The taint analysis' fixpoints are framework instances now."""

    def test_outer_fixpoint_cap_is_enforced(self):
        module = lower_program(parse_program(FEEDBACK_SRC))
        # One round is not enough for the read-before-write feedback:
        # `h = g` runs before `g = input(ch)` writes the global, so the
        # read only observes the taint on the second global round.
        with pytest.raises(ConvergenceError) as err:
            TaintAnalysis(module, max_rounds=1).run()
        assert err.value.analysis == "global-taint"
        assert err.value.scope == "main"
        assert err.value.rounds == 1
        # The default cap converges on the same module.
        result = TaintAnalysis(module).run()
        assert result.module is module

    def test_results_unchanged_vs_known_program(self, weather_ocelot):
        # The rewrite onto the framework must not perturb the analysis:
        # weather/ocelot still derives one fresh and one consistent policy.
        kinds = sorted(p.kind for p in weather_ocelot.policies.all_policies())
        assert kinds == ["consistent", "fresh"]
        result = analyze_module(weather_ocelot.module)
        assert set(result.uses) == {
            p.pid
            for p in weather_ocelot.policies.all_policies()
            if p.kind == "fresh"
        }


class TestAvailability:
    def test_nothing_available_outside_regions(self):
        module = lower_program(parse_program(DIAMOND_SRC))
        result = analyze_availability(module)
        # Without atomic regions a JIT reboot can resume anywhere, so no
        # chain is ever must-available.
        assert all(not fact for fact in result.before.values())

    def test_region_inputs_available_at_uses(self, weather_ocelot):
        result = analyze_availability(weather_ocelot.module)
        plan_checks = weather_ocelot.detector_plan().checks
        # weather/ocelot encloses each policy in a region, so at every
        # check site the required chains are must-available.
        baseline = plan_checks if plan_checks else {}
        assert baseline, "weather/ocelot should have check sites"
        for site, checks in baseline.items():
            available = result.at(site)
            for check in checks:
                assert set(check.required) <= set(available), (
                    site,
                    check.pid,
                )

    def test_facts_are_context_qualified(self, calls_ocelot):
        result = analyze_availability(calls_ocelot.module)
        contexts = {chain.context for chain in result.before}
        assert len(contexts) > 1  # facts recorded under call contexts
        assert all(isinstance(c, Chain) for c in result.before)


#: A counted loop kept as a real back edge (``unroll_loops=False``).
LOOP_SRC = """\
inputs ch;

fn main() {
  let t = input(ch);
  repeat 3 {
    work(10);
  }
  log(t);
}
"""

#: A function whose body is empty: entry jumps straight to exit.
EMPTY_FN_SRC = """\
fn nothing() {
}

fn main() {
  nothing();
  log(0);
}
"""


def _loop_module():
    from repro.core.passes.base import PipelineOptions
    from repro.core.pipeline import compile_source

    return compile_source(
        LOOP_SRC, "jit", options=PipelineOptions(unroll_loops=False)
    ).module


class TestIntervalWidening:
    """The solver's widening hook, driven by the cycle-interval lattice."""

    def test_loop_converges_within_round_cap(self):
        from repro.analysis.staleness import analyze_windows

        module = _loop_module()
        plan_chains = frozenset(
            Chain.of((), instr.uid)
            for func in module.functions.values()
            for block in func.blocks.values()
            for instr in block.all_instrs()
            if type(instr).__name__ == "InputInstr"
        )
        # Without widening the loop grows the upper bound every round
        # and the solver would hit its cap; with it, this terminates.
        result = analyze_windows(module, plan_chains)
        assert result.rounds > 0

    def test_widened_hi_is_infinite_lo_stays_exact(self):
        from repro.analysis.intervals import Interval
        from repro.analysis.staleness import analyze_windows

        module = _loop_module()
        func = module.function("main")
        input_uid = next(
            instr.uid
            for block in func.blocks.values()
            for instr in block.all_instrs()
            if type(instr).__name__ == "InputInstr"
        )
        chain = Chain.of((), input_uid)
        result = analyze_windows(module, frozenset({chain}))
        post_loop = [
            interval
            for site, fact in result.before.items()
            for tracked, interval in fact.items()
            if tracked == chain and interval.hi is None
        ]
        assert post_loop, "loop never widened any window"
        assert all(isinstance(iv, Interval) for iv in post_loop)
        assert all(iv.lo is not None for iv in post_loop)

    def test_acyclic_diamond_keeps_exact_bounds(self):
        from repro.analysis.staleness import analyze_windows

        module = lower_program(parse_program(DIAMOND_SRC))
        func = module.function("main")
        input_uid = next(
            instr.uid
            for block in func.blocks.values()
            for instr in block.all_instrs()
            if type(instr).__name__ == "InputInstr"
        )
        chain = Chain.of((), input_uid)
        result = analyze_windows(module, frozenset({chain}))
        # Every recorded window on an acyclic CFG stays finite: the
        # merge-count threshold never trips on diamond joins.
        windows = [
            interval
            for fact in result.before.values()
            for tracked, interval in fact.items()
            if tracked == chain
        ]
        assert windows
        assert all(iv.hi is not None for iv in windows)

    def test_round_cap_names_staleness(self):
        from repro.analysis.dataflow import ConvergenceError
        from repro.analysis.staleness import analyze_windows

        module = _loop_module()
        with pytest.raises(ConvergenceError) as err:
            analyze_windows(module, frozenset(), max_rounds=1)
        assert err.value.analysis == "staleness"
        assert err.value.rounds == 1


class TestSolverEdgeCases:
    def test_unreachable_block_gets_no_fact(self):
        from repro.ir import instructions as ir
        from repro.ir.module import BasicBlock, IRFunction

        blocks = {
            "entry": BasicBlock(
                name="entry",
                instrs=[],
                terminator=ir.Jump(target="exit", uid=ir.InstrId("f", 1)),
            ),
            "island": BasicBlock(
                name="island",
                instrs=[],
                terminator=ir.Jump(target="exit", uid=ir.InstrId("f", 2)),
            ),
            "exit": BasicBlock(
                name="exit",
                instrs=[],
                terminator=ir.RetInstr(expr=None, uid=ir.InstrId("f", 3)),
            ),
        }
        func = IRFunction(name="f", params=[], blocks=blocks)

        class Reached:
            name = "reached"
            direction = FORWARD
            lattice = SetUnionLattice()

            def boundary(self):
                return frozenset({"entry"})

            def transfer(self, block_name, fact):
                return fact | {block_name}

        solution = FunctionDataflow(func).solve(Reached())
        assert "entry" in solution.out_fact("exit")
        # First-reaching-fact convention: a block no path enters simply
        # has no fact, rather than a fabricated bottom.
        assert solution.out_fact("island") is None

    def test_empty_function_body_solves(self):
        from repro.analysis.staleness import analyze_windows

        module = lower_program(parse_program(EMPTY_FN_SRC))
        result = analyze_windows(module, frozenset())
        assert result.contexts >= 2  # main plus the called empty body

    def test_empty_tracked_set_still_records_boot(self):
        from repro.analysis.staleness import BOOT, analyze_windows

        module = lower_program(parse_program(EMPTY_FN_SRC))
        result = analyze_windows(module, frozenset())
        assert result.before  # every instruction got a fact
        assert all(BOOT in fact for fact in result.before.values())
