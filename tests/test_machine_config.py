"""Machine configuration and lifecycle edge cases."""

from repro.core.pipeline import compile_source
from repro.energy.capacitor import Capacitor
from repro.energy.harvester import ConstantHarvester
from repro.runtime.executor import Machine, MachineConfig, NVState
from repro.runtime.supply import ContinuousPower, EnergyDrivenSupply
from repro.sensors.environment import Environment


class TestBudgets:
    def test_max_cycles_abandons_run(self):
        compiled = compile_source(
            "fn main() { repeat 50 { work(100); } }", "jit"
        )
        machine = Machine(
            compiled.module,
            Environment(),
            ContinuousPower(),
            config=MachineConfig(max_cycles=500),
        )
        result = machine.run()
        assert not result.stats.completed

    def test_observations_can_be_disabled(self):
        compiled = compile_source(
            "inputs ch;\nfn main() { let x = input(ch); log(x); }", "jit"
        )
        machine = Machine(
            compiled.module,
            Environment.constant_for(["ch"], 1),
            ContinuousPower(),
            config=MachineConfig(emit_observations=False),
        )
        result = machine.run()
        assert result.stats.completed
        assert len(result.trace) == 0


class TestNVStateSharing:
    def test_explicit_nv_shared_between_machines(self):
        compiled = compile_source(
            "nonvolatile n = 0;\nfn main() { n = n + 1; }", "jit"
        )
        nv = NVState.initial(compiled.module)
        for _ in range(3):
            Machine(
                compiled.module, Environment(), ContinuousPower(), nv=nv
            ).run()
        assert nv.globals["n"].value == 3

    def test_snapshot_values_view(self):
        compiled = compile_source(
            "nonvolatile n = 7;\nnonvolatile a[2] = [1, 2];\n"
            "fn main() { skip; }",
            "jit",
        )
        nv = NVState.initial(compiled.module)
        snap = nv.snapshot_values()
        assert snap == {"globals": {"n": 7}, "arrays": {"a": [1, 2]}}


class TestStartTau:
    def test_start_tau_shifts_environment_reads(self):
        from repro.sensors.environment import steps

        compiled = compile_source(
            "inputs ch;\nfn main() { let x = input(ch); log(x); }", "jit"
        )
        env = Environment({"ch": steps([10, 99], 1000)})
        early = Machine(compiled.module, env, ContinuousPower(), start_tau=0)
        late = Machine(compiled.module, env, ContinuousPower(), start_tau=1500)
        assert early.run().trace.outputs[0].values == (10,)
        assert late.run().trace.outputs[0].values == (99,)


class TestModeProperty:
    def test_mode_transitions(self):
        compiled = compile_source("fn main() { atomic { skip; } }", "jit")
        # jit build strips the manual region; recompile as ocelot to keep it.
        compiled = compile_source("fn main() { atomic { skip; } }", "ocelot")
        machine = Machine(compiled.module, Environment(), ContinuousPower())
        assert machine.mode == "jit"
        seen_atomic = False
        while not machine._done:  # noqa: SLF001 - intentional introspection
            machine.step()
            if machine.mode == "atomic":
                seen_atomic = True
        assert seen_atomic
        assert machine.mode == "jit"


class TestEnergyAccounting:
    def test_on_off_split_sums_to_tau(self):
        compiled = compile_source("fn main() { repeat 6 { work(120); } }", "jit")
        supply = EnergyDrivenSupply(Capacitor(500, 100), ConstantHarvester(300))
        machine = Machine(compiled.module, Environment(), supply)
        result = machine.run()
        assert result.stats.completed
        assert machine.tau == result.stats.cycles_on + result.stats.cycles_off
