"""Region inference tests (Algorithm 1)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.policies import build_policies
from repro.analysis.provenance import common_context
from repro.analysis.taint import analyze_module
from repro.core.inference import find_candidate, infer_atomic
from repro.ir import instructions as ir
from repro.ir.lowering import lower_program
from repro.ir.verify import verify_module
from repro.lang.parser import parse_program


def prepare(source: str):
    module = lower_program(parse_program(source))
    taint = analyze_module(module)
    policies = build_policies(taint)
    return module, taint, policies


def infer(source: str):
    module, taint, policies = prepare(source)
    pm, regions = infer_atomic(module, policies)
    verify_module(module)
    return module, policies, pm, regions


def region_markers(module, region: str):
    start = end = None
    for instr in module.all_instrs():
        if isinstance(instr, ir.AtomicStart) and instr.region == region:
            start = instr
        elif isinstance(instr, ir.AtomicEnd) and instr.region == region:
            end = instr
    return start, end


class TestFigure3Placement:
    """The paper's running example: Fresh(x) with a branch and alarm."""

    SRC = (
        "inputs temp;\n"
        "fn main() { let x = input(temp); Fresh(x); "
        "if x < 5 { alarm(); } log(7); }"
    )

    def test_one_region_inferred(self):
        module, policies, pm, regions = infer(self.SRC)
        assert len(regions) == 1

    def test_region_starts_before_input_ends_at_join(self):
        module, policies, pm, regions = infer(self.SRC)
        region = regions[0]
        assert region.start_block == "entry"
        assert region.start_index == 0  # before the hoisted input
        assert region.end_block.startswith("join")

    def test_unrelated_log_outside_region(self):
        module, policies, pm, regions = infer(self.SRC)
        func = module.function("main")
        join = func.blocks[regions[0].end_block]
        end_idx = regions[0].end_index
        # The trailing log's uart guard comes after the inferred end.
        tail = join.instrs[end_idx + 1 :]
        assert any(isinstance(i, ir.OutputInstr) for i in tail)


class TestFigure6Placement:
    """Inputs behind call chains; two calls to the same sensor function."""

    def test_fresh_region_placed_in_caller(self):
        src = (
            "inputs s;\n"
            "fn tmp() { let t = input(s); return t; }\n"
            "fn main() { let x = tmp(); Fresh(x); log(x); }"
        )
        module, policies, pm, regions = infer(src)
        (region,) = regions
        assert region.func == "main"

    def test_consistent_region_placed_in_confirm(self, calls_ocelot):
        regions = {r.pid: r for r in calls_ocelot.regions}
        consistent = [r for pid, r in regions.items() if "consistent" in pid]
        assert consistent and consistent[0].func == "confirm"

    def test_candidate_equals_common_context(self, calls_ocelot):
        module = calls_ocelot.module
        for policy in calls_ocelot.policies.all_policies():
            chains = sorted(policy.ops())
            if not chains:
                continue
            assert find_candidate(module, chains) == common_context(chains)


class TestConsistentSets:
    def test_region_covers_both_inputs(self):
        src = (
            "inputs a, b;\n"
            "fn main() { let consistent(1) x = input(a); work(50); "
            "let consistent(1) y = input(b); log(x, y); }"
        )
        module, policies, pm, regions = infer(src)
        (region,) = regions
        start, end = region_markers(module, region.region)
        func = module.function("main")
        s_pos = func.position_of(start.uid)
        e_pos = func.position_of(end.uid)
        input_positions = [
            func.position_of(i.uid)
            for i in func.all_instrs()
            if isinstance(i, ir.InputInstr)
        ]
        for pos in input_positions:
            assert s_pos <= pos <= e_pos

    def test_unrolled_loop_set_covered_by_one_region(self):
        src = (
            "inputs ch;\n"
            "fn main() { let s = 0; repeat 3 { "
            "let consistent(1) r = input(ch); s = s + r; } log(s); }"
        )
        module, policies, pm, regions = infer(src)
        (region,) = regions
        # All three unrolled inputs must be inside the one region.
        start, end = region_markers(module, region.region)
        func = module.function("main")
        s_pos = func.position_of(start.uid)
        e_pos = func.position_of(end.uid)
        inputs = [i for i in func.all_instrs() if isinstance(i, ir.InputInstr)]
        assert len(inputs) == 3
        for i in inputs:
            assert s_pos <= func.position_of(i.uid) <= e_pos


class TestTrivialPolicies:
    def test_no_region_for_pure_fresh(self):
        src = "fn main() { let x = 1; Fresh(x); log(x); }"
        module, policies, pm, regions = infer(src)
        assert regions == []

    def test_include_trivial_materializes_region(self):
        src = "fn main() { let x = 1; Fresh(x); log(x); }"
        module, taint, policies = prepare(src)
        pm, regions = infer_atomic(module, policies, include_trivial=True)
        assert len(regions) == 1

    def test_single_input_consistent_is_trivial(self):
        src = "inputs ch;\nfn main() { let consistent(1) x = input(ch); log(x); }"
        module, policies, pm, regions = infer(src)
        assert regions == []


class TestPolicyMap:
    def test_pm_maps_regions_to_pids(self):
        src = (
            "inputs a, b;\n"
            "fn main() { let consistent(1) x = input(a); "
            "let consistent(1) y = input(b); log(x, y); }"
        )
        module, policies, pm, regions = infer(src)
        (region,) = regions
        assert pm.policies_of(region.region) == [region.pid]
        assert pm.region_of(region.pid) == region.region


class TestOverlappingRegions:
    def test_two_policies_can_overlap_without_breaking_verifier(self):
        src = (
            "inputs a, b;\n"
            "fn main() {\n"
            "  let x = input(a);\n"
            "  Fresh(x);\n"
            "  let consistent(1) y = input(b);\n"
            "  let consistent(1) z = input(a);\n"
            "  if x > 1 { alarm(); }\n"
            "  log(y, z);\n"
            "}"
        )
        module, policies, pm, regions = infer(src)
        assert len(regions) == 2  # overlap allowed; verifier accepted it


class TestHypothesisInference:
    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_inference_always_verifies(self, data):
        from tests.strategies import program_sources

        source = data.draw(program_sources())
        module, taint, policies = prepare(source)
        infer_atomic(module, policies)
        verify_module(module)

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_find_candidate_equals_lcp(self, data):
        from tests.strategies import program_sources

        source = data.draw(program_sources())
        module, taint, policies = prepare(source)
        for policy in policies.all_policies():
            chains = sorted(policy.ops())
            if chains:
                assert find_candidate(module, chains) == common_context(chains)
