"""Energy-feasibility analysis tests (Section 5.3)."""

import pytest

from repro.apps import BENCHMARK_NAMES, BENCHMARKS
from repro.core.feasibility import (
    bound_regions,
    check_feasibility,
    profile_usable_energy,
)
from repro.core.pipeline import compile_source
from repro.energy.capacitor import Capacitor
from repro.energy.harvester import ConstantHarvester
from repro.eval.profiles import STANDARD_PROFILE
from repro.runtime.executor import Machine, MachineConfig
from repro.runtime.supply import EnergyDrivenSupply
from repro.sensors.environment import Environment


def compile_(source: str):
    return compile_source(source, "ocelot")


class TestBounds:
    def test_bound_covers_actual_cost(self):
        compiled = compile_(
            "inputs ch;\nnonvolatile g = 0;\n"
            "fn main() { atomic { let v = input(ch); g = g + v; work(100); } }"
        )
        (bound,) = [
            b for b in bound_regions(compiled.module) if b.omega_words
        ]
        assert bound.bounded
        # Run it and compare: the bound must dominate the measured cost.
        env = Environment.constant_for(["ch"], 1)
        machine = Machine(compiled.module, env)
        result = machine.run()
        assert bound.cycles >= result.stats.cycles_on - 5

    def test_non_constant_work_is_unknown(self):
        compiled = compile_(
            "inputs ch;\n"
            "fn main() { let n = input(ch); atomic { work(n); } log(n); }"
        )
        bounds = bound_regions(compiled.module)
        unknown = [b for b in bounds if not b.bounded]
        assert unknown
        assert "non-constant" in (unknown[0].reason or "")

    def test_callee_costs_included(self):
        src_inline = "fn main() { atomic { work(300); } }"
        src_call = (
            "fn heavy() { work(300); }\n"
            "fn main() { atomic { heavy(); } }"
        )
        inline_bound = bound_regions(compile_(src_inline).module)
        call_bound = bound_regions(compile_(src_call).module)
        assert call_bound[0].cycles >= inline_bound[0].cycles

    def test_omega_words_reflected_in_entry(self):
        src = (
            "nonvolatile big[32];\n"
            "fn main() { atomic { big[0] = 1; } }"
        )
        (bound,) = bound_regions(compile_(src).module)
        assert bound.omega_words == 32
        assert bound.entry_cycles > 32 * 2


class TestVerdicts:
    def test_feasible_program(self):
        compiled = compile_(
            "inputs ch;\nfn main() { atomic { let v = input(ch); log(v); } }"
        )
        report = check_feasibility(compiled.module, usable_energy=100_000)
        assert report.ok

    def test_infeasible_region_reported(self):
        compiled = compile_("fn main() { atomic { work(5000); } }")
        report = check_feasibility(compiled.module, usable_energy=1000)
        assert not report.ok
        assert report.infeasible
        assert report.worst() is not None

    def test_infeasible_region_actually_livelocks(self):
        """The static verdict predicts the dynamic livelock."""
        compiled = compile_("fn main() { atomic { work(800); } }")
        report = check_feasibility(compiled.module, usable_energy=500)
        assert report.infeasible
        supply = EnergyDrivenSupply(Capacitor(700, 200), ConstantHarvester(1000))
        machine = Machine(
            compiled.module,
            Environment(),
            supply,
            config=MachineConfig(max_region_restarts=20),
        )
        with pytest.raises(Exception, match="cannot complete"):
            machine.run()

    def test_profile_usable_energy(self):
        value = profile_usable_energy(STANDARD_PROFILE)
        lo = STANDARD_PROFILE.boot_fraction[0]
        span = STANDARD_PROFILE.capacity - STANDARD_PROFILE.low_threshold
        assert value == int(lo * span)


class TestBenchmarksAreFeasible:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_every_app_region_fits_standard_profile(self, name):
        """The Section 5.3 requirement, checked for the whole evaluation:
        every inferred/manual region of every build fits the guaranteed
        post-boot window of the standard profile."""
        meta = BENCHMARKS[name]
        usable = profile_usable_energy(STANDARD_PROFILE)
        for config in ("ocelot", "atomics"):
            compiled = compile_source(meta.source, config)
            report = check_feasibility(
                compiled.module, usable, costs=meta.cost_model()
            )
            assert not report.unknown, (name, config, report.unknown)
            assert not report.infeasible, (
                name,
                config,
                [(b.region, b.cycles) for b in report.infeasible],
            )
