"""Sensor environment tests."""

import pytest

from repro.sensors.environment import (
    Environment,
    burst,
    constant,
    phase_shifted,
    ramp,
    random_walk,
    sine,
    steps,
)


class TestSignals:
    def test_constant(self):
        sig = constant(42)
        assert [sig(t) for t in (0, 100, 10**6)] == [42, 42, 42]

    def test_ramp(self):
        sig = ramp(start=10, slope_per_kilocycle=5)
        assert sig(0) == 10
        assert sig(1000) == 15
        assert sig(2000) == 20

    def test_steps_cycle(self):
        sig = steps([1, 2, 3], dwell=10)
        assert sig(0) == 1
        assert sig(10) == 2
        assert sig(29) == 3
        assert sig(30) == 1

    def test_steps_change_exposes_staleness(self):
        sig = steps([5, 50], dwell=100)
        assert sig(99) != sig(100)

    def test_sine_bounds(self):
        sig = sine(mean=10, amplitude=3, period=100)
        values = [sig(t) for t in range(200)]
        assert min(values) >= 7 and max(values) <= 13

    def test_burst_shape(self):
        sig = burst(base=1, spike=99, period=100, width=10)
        assert sig(5) == 99
        assert sig(50) == 1
        assert sig(105) == 99

    def test_random_walk_deterministic(self):
        a = random_walk(start=100, step=5, seed=7)
        b = random_walk(start=100, step=5, seed=7)
        taus = [0, 500, 1500, 9000, 100, 2]  # out-of-order reads too
        assert [a(t) for t in taus] == [b(t) for t in taus]

    def test_random_walk_pure_function_of_time(self):
        sig = random_walk(start=0, step=1, seed=3, interval=100)
        first = sig(5000)
        sig(123)  # interleaved reads must not perturb
        assert sig(5000) == first

    def test_steps_memoizes_last_segment(self):
        class CountingLevels(list):
            lookups = 0

            def __getitem__(self, idx):
                CountingLevels.lookups += 1
                return super().__getitem__(idx)

        levels = CountingLevels([4, 8])
        sig = steps(levels, dwell=100)
        assert [sig(0), sig(1), sig(99)] == [4, 4, 4]
        assert CountingLevels.lookups == 1  # two same-segment reads were free
        assert sig(100) == 8  # segment change still recomputes
        assert CountingLevels.lookups == 2

    def test_random_walk_fast_path_agrees_with_cold_reads(self):
        # Two identical walks: one read strictly in order (hot last-segment
        # path), one probed out of order (cold dict path) -- same values.
        hot = random_walk(start=50, step=3, seed=9, interval=100)
        cold = random_walk(start=50, step=3, seed=9, interval=100)
        hot_values = [hot(t) for t in range(0, 1000, 50)]  # repeats segments
        cold_values = [cold(t) for t in (950, 0, 450, 50)]
        assert hot_values[-1] == cold_values[0]
        assert hot_values[0] == cold_values[1]
        assert [hot(t) for t in (450, 50)] == cold_values[2:]

    def test_phase_shifted_advances_reads(self):
        sig = phase_shifted(steps([1, 2, 3], dwell=10), 10)
        assert sig(0) == 2
        assert sig(10) == 3
        base = steps([1, 2], dwell=10)
        assert phase_shifted(base, 0) is base

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            steps([], 10)
        with pytest.raises(ValueError):
            steps([1], 0)
        with pytest.raises(ValueError):
            sine(0, 1, 0)
        with pytest.raises(ValueError):
            burst(0, 1, 0, 1)
        with pytest.raises(ValueError):
            random_walk(0, 1, 0, interval=0)


class TestEnvironment:
    def test_bind_and_read(self):
        env = Environment().bind("ch", constant(9))
        assert env.read("ch", 0) == 9

    def test_unknown_channel_raises(self):
        with pytest.raises(KeyError, match="no signal"):
            Environment().read("nope", 0)

    def test_constant_for(self):
        env = Environment.constant_for(["a", "b"], 3)
        assert env.read("a", 10) == 3
        assert env.read("b", 99) == 3

    def test_reads_are_pure(self):
        env = Environment({"ch": steps([1, 2], 50)})
        assert env.read("ch", 25) == env.read("ch", 25)

    def test_shifted_environment_offsets_every_channel(self):
        env = Environment({"a": steps([1, 2], 50), "b": ramp(0, 1000)})
        shifted = env.shifted(50)
        assert shifted.read("a", 0) == env.read("a", 50)
        assert shifted.read("b", 25) == env.read("b", 75)
        assert env.shifted(0) is env
