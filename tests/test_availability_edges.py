"""Availability-analysis edge cases feeding the verifier's pruning.

The pruning argument (see docs/architecture.md, "Verification") leans on
three structural facts the analysis must get right: nested region
markers are *not* resume points (Atom-Start-Inner only bumps the
nesting counter), outside any region *everything* is a resume point
(JIT-Reboot resumes at a checkpoint that can be taken anywhere), and
functions with inconsistent region brackets degrade conservatively.
These are exactly the cases where a wrong answer would make the
verifier unsound, so they get direct tests, plus the injectable
solver-round cap surfacing :class:`ConvergenceError`.
"""

from __future__ import annotations

import pytest

from repro.analysis.availability import (
    analyze_availability,
    classify_resume_points,
    function_block_depths,
)
from repro.analysis.dataflow import ConvergenceError
from repro.analysis.provenance import Chain
from repro.ir import instructions as ir
from repro.ir.lowering import lower_program
from repro.lang.parser import parse_program


def lower(source: str):
    return lower_program(parse_program(source))


def chain_of(module, func: str, pred) -> Chain:
    """Top-level chain of the first instruction of ``func`` matching ``pred``."""
    for instr in module.function(func).all_instrs():
        if pred(instr):
            return Chain(ids=(instr.uid,))
    raise AssertionError("no matching instruction")


class TestNestedRegions:
    SRC = (
        "inputs temp;\n"
        "fn main() { atomic { let x = input(temp); atomic { Fresh(x); } } }"
    )

    def test_inner_marker_is_not_a_resume_point(self):
        """Availability gathered in the outer region survives crossing a
        nested atomic_start: only the *outermost* start clears the fact."""
        module = lower(self.SRC)
        result = analyze_availability(module)
        input_chain = chain_of(
            module, "main", lambda i: isinstance(i, ir.InputInstr)
        )
        annot_chain = chain_of(
            module, "main", lambda i: isinstance(i, ir.AnnotInstr)
        )
        # The Fresh annotation sits inside the nested region, after the
        # input: the input chain must still be available there.
        assert input_chain in result.at(annot_chain)

    def test_depth_reflects_nesting(self):
        module = lower(self.SRC)
        classification = classify_resume_points(module)
        annot_chain = chain_of(
            module, "main", lambda i: isinstance(i, ir.AnnotInstr)
        )
        assert classification.depth[annot_chain] == 2
        assert classification.prunable(annot_chain)
        # The outermost atomic_start itself executes at depth 0: a
        # failure right before it resumes outside any region.
        starts = [
            chain
            for chain, depth in classification.depth.items()
            if isinstance(module.instr(chain.op), ir.AtomicStart)
        ]
        assert min(classification.depth[c] for c in starts) == 0


class TestJitResumeAnywhere:
    # No outputs: lowering wraps log/alarm/send in uart guard regions,
    # which would (correctly) put those chains at depth 1.
    SRC = (
        "inputs temp;\n"
        "fn main() { let x = input(temp); Fresh(x); "
        "if x < 5 { let y = x + 1; } }"
    )

    def test_nothing_available_without_regions(self):
        """With no atomic regions a JIT checkpoint can sit anywhere, so
        no chain is ever guaranteed re-executed -- and nothing prunable."""
        module = lower(self.SRC)
        result = analyze_availability(module)
        classification = classify_resume_points(module)
        for func in module.functions.values():
            for instr in func.all_instrs():
                chain = Chain(ids=(instr.uid,))
                assert result.at(chain) == frozenset()
                assert not classification.prunable(chain)
        assert classification.in_region_chains == 0


class TestInconsistentBrackets:
    def _unbalanced_module(self):
        """A join reachable at two different static depths: legal IR is
        bracket-balanced, so build the pathology by mutating a branch."""
        module = lower("fn main() { if 1 < 2 { alarm(); } log(3); }")
        func = module.function("main")
        # Insert an unmatched atomic_start into the then-arm only.
        for block in func.blocks.values():
            if any(
                isinstance(i, ir.OutputInstr) and i.op == "alarm"
                for i in block.instrs
            ):
                block.instrs.insert(
                    0,
                    ir.AtomicStart(
                        region="bad", uid=ir.InstrId("main", 9_000)
                    ),
                )
                return module
        raise AssertionError("no then-arm found")

    def test_depths_flag_inconsistency(self):
        module = self._unbalanced_module()
        _, ok = function_block_depths(module.function("main"))
        assert not ok

    def test_classification_degrades_conservatively(self):
        module = self._unbalanced_module()
        classification = classify_resume_points(module)
        assert "main" in classification.inconsistent
        for instr in module.function("main").all_instrs():
            assert not classification.prunable(Chain(ids=(instr.uid,)))

    def test_availability_degrades_to_empty(self):
        module = self._unbalanced_module()
        result = analyze_availability(module)
        for instr in module.function("main").all_instrs():
            assert result.at(Chain(ids=(instr.uid,))) == frozenset()


class TestConvergenceCap:
    SRC = (
        "inputs temp;\n"
        "fn main() { atomic { repeat 3 "
        "{ let x = input(temp); Fresh(x); } } }"
    )

    def test_injectable_round_cap_surfaces(self):
        module = lower(self.SRC)
        with pytest.raises(ConvergenceError) as exc:
            analyze_availability(module, max_rounds=0)
        assert exc.value.analysis == "availability"

    def test_default_cap_converges(self):
        module = lower(self.SRC)
        result = analyze_availability(module)
        assert result.rounds > 0
