"""Baseline transform and effort-model tests."""

import pytest

from repro.apps import BENCHMARKS
from repro.baselines.atomics_only import atomics_only_transform
from repro.baselines.effort import (
    STRATEGY_TABLE,
    atomics_effort,
    jit_effort,
    ocelot_effort,
    samoyed_effort,
    tics_effort,
)
from repro.lang import ast
from repro.lang.parser import parse_program
from repro.lang.printer import print_program


class TestAtomicsOnlyTransform:
    SRC = """
    inputs ch;
    fn helper() { let v = input(ch); return v; }
    fn main() {
      let a = helper();
      let b = a + 1;
      if b > 3 { alarm(); }
      let c = 5;
      log(c);
    }
    """

    def test_main_fully_covered(self):
        program = atomics_only_transform(parse_program(self.SRC))
        for stmt in program.functions["main"].body:
            assert isinstance(stmt, (ast.Atomic, ast.Return))

    def test_consecutive_simple_statements_chunked_together(self):
        program = atomics_only_transform(parse_program(self.SRC))
        first = program.functions["main"].body[0]
        assert isinstance(first, ast.Atomic)
        assert len(first.body) == 2  # let a; let b;

    def test_compound_statement_gets_own_region(self):
        program = atomics_only_transform(parse_program(self.SRC))
        regions = program.functions["main"].body
        if_region = regions[1]
        assert isinstance(if_region, ast.Atomic)
        assert isinstance(if_region.body[0], ast.If)

    def test_helpers_left_untouched(self):
        program = atomics_only_transform(parse_program(self.SRC))
        assert not any(
            isinstance(s, ast.Atomic) for s in program.functions["helper"].body
        )

    def test_original_program_unmodified(self):
        original = parse_program(self.SRC)
        before = print_program(original)
        atomics_only_transform(original)
        assert print_program(original) == before

    def test_existing_atomic_kept_as_is(self):
        src = "fn main() { atomic { skip; } work(5); }"
        program = atomics_only_transform(parse_program(src))
        body = program.functions["main"].body
        assert isinstance(body[0], ast.Atomic)
        assert isinstance(body[0].body[0], ast.Skip)

    def test_returns_stay_outside_regions(self):
        src = "fn main() { let x = 1; return; }"
        program = atomics_only_transform(parse_program(src))
        body = program.functions["main"].body
        assert isinstance(body[-1], ast.Return)


class TestEffortModels:
    def test_jit_is_free_and_wrong(self):
        for meta in BENCHMARKS.values():
            assert jit_effort(meta) == 0

    def test_ocelot_formula(self):
        meta = BENCHMARKS["tire"]
        assert ocelot_effort(meta) == meta.input_sites + meta.annotation_lines

    def test_tics_counts_freshcon_twice(self):
        meta = BENCHMARKS["tire"]
        expected = (
            8 * (meta.fresh_lines + meta.freshcon_lines)
            + 2 * (meta.consistent_lines + meta.freshcon_lines)
            + 6 * meta.consistent_sets
        )
        assert tics_effort(meta) == expected

    def test_samoyed_loop_penalty(self):
        meta = BENCHMARKS["photo"]
        assert samoyed_effort(meta) == 3 * 1 + 1 + 8

    def test_atomics_effort_scales_with_regions(self):
        meta = BENCHMARKS["cem"]
        assert atomics_effort(meta, regions=4) == meta.input_sites + 8

    @pytest.mark.parametrize("name", list(BENCHMARKS))
    def test_ocelot_never_beaten_by_tics(self, name):
        meta = BENCHMARKS[name]
        assert ocelot_effort(meta) <= tics_effort(meta)

    @pytest.mark.parametrize("name", list(BENCHMARKS))
    def test_ocelot_vs_samoyed_matches_paper_ordering(self, name):
        # The paper's own Table 4 has one exception: greenhouse needs 7
        # Ocelot lines vs Samoyed's 6 (many inputs, one atomic function).
        meta = BENCHMARKS[name]
        if name == "greenhouse":
            assert ocelot_effort(meta) > samoyed_effort(meta)
        else:
            assert ocelot_effort(meta) <= samoyed_effort(meta)

    @pytest.mark.parametrize(
        "name", ["activity", "cem", "greenhouse", "photo", "tire"]
    )
    def test_matches_paper_exactly_where_modeled(self, name):
        meta = BENCHMARKS[name]
        assert ocelot_effort(meta) == meta.paper_effort["ocelot"], name
        assert tics_effort(meta) == meta.paper_effort["tics"], name
        assert samoyed_effort(meta) == meta.paper_effort["samoyed"], name

    def test_send_photo_known_delta(self):
        # Our SendPhoto models one input function + one annotation (2);
        # the paper reports 4 -- documented in EXPERIMENTS.md.
        meta = BENCHMARKS["send_photo"]
        assert ocelot_effort(meta) == 2
        assert meta.paper_effort["ocelot"] == 4


class TestStrategyTable:
    def test_five_systems(self):
        assert [r.system for r in STRATEGY_TABLE] == [
            "Ocelot", "JIT", "Atomics", "TICS", "Samoyed",
        ]

    def test_only_ocelot_is_unconditionally_correct(self):
        correct = [r for r in STRATEGY_TABLE if r.upholds.startswith("Correct")]
        assert len(correct) == 1 and correct[0].system == "Ocelot"
