#!/usr/bin/env python3
"""Checker mode (Section 8): validating manually placed atomic regions.

Programmers who already placed atomic regions -- e.g. ported Samoyed code
-- can use Ocelot's analysis as a *checker*: annotate the timing
constraints, and the Section 5.2 judgments verify that the existing
regions enforce them, without inserting anything.

The script shows three scenarios:

1. a correct manual placement (one region covers the consistent pair),
2. a subtly wrong one (the pair split across two regions -- memory is
   perfectly consistent, but the timing property silently breaks),
3. mixed mode: keeping the programmer's regions and letting Ocelot add
   only what is missing (the paper's "using added regions and Ocelot
   together").

Run with::

    python examples/checker_mode.py
"""

from repro.analysis.policies import build_policies
from repro.analysis.taint import analyze_module
from repro.core.checker import check_atomic_regions
from repro.core.pipeline import compile_source
from repro.ir import print_module
from repro.ir.lowering import lower_program
from repro.lang import parse_program

GOOD = """\
inputs pres, hum;

fn main() {
  atomic {
    let consistent(1) y = input(pres);
    let consistent(1) z = input(hum);
  }
  log(y, z);
}
"""

BAD = """\
inputs pres, hum;

fn main() {
  atomic {
    let consistent(1) y = input(pres);
  }
  atomic {
    let consistent(1) z = input(hum);
  }
  log(y, z);
}
"""


def check_manual(source: str) -> None:
    """Run only the region-placement judgment on programmer regions."""
    module = lower_program(parse_program(source))
    taint = analyze_module(module)
    policies = build_policies(taint)
    report = check_atomic_regions(module, policies)
    if report.ok:
        print("  PASS: every policy is enclosed in one atomic extent")
        for pid, extent in report.policy_extents.items():
            print(f"    {pid}: enforced by region opened at {extent[1]}")
    else:
        print("  FAIL:")
        for failure in report.failures:
            print(f"    {failure}")


def main() -> None:
    print("--- 1. correct manual placement " + "-" * 37)
    print(GOOD)
    check_manual(GOOD)

    print()
    print("--- 2. split consistent set " + "-" * 41)
    print(BAD)
    check_manual(BAD)
    print()
    print("  Memory stays consistent in both builds -- only the checker")
    print("  notices that a power failure between the regions tears the")
    print("  pair (no DINO/Alpaca-style system would flag this).")

    print()
    print("--- 3. mixed mode: Ocelot repairs the bad placement " + "-" * 17)
    compiled = compile_source(BAD, "ocelot")
    print(f"  checker after inference: {'PASS' if compiled.check.ok else 'FAIL'}")
    inferred = [r for r in compiled.regions]
    for region in inferred:
        print(
            f"  added region {region.region} for {region.pid} in "
            f"{region.func} ({region.start_block}[{region.start_index}] .. "
            f"{region.end_block}[{region.end_index}])"
        )
    print()
    print("  The inferred region overlaps the programmer's two regions;")
    print("  at runtime the markers flatten into one atomic extent, so")
    print("  both the manual and the inferred atomicity are respected:")
    print()
    print(print_module(compiled.module))


if __name__ == "__main__":
    main()
