#!/usr/bin/env python3
"""The Tire benchmark on harvested energy: a full deployment simulation.

Runs the paper's own tire-safety application (Figure 9) for a fixed
logical-time window on the simulated RF-harvesting testbed, comparing the
three build configurations the evaluation uses:

* **JIT** -- fastest, but burst warnings can be decided on stale motion
  data and torn pressure snapshots;
* **Ocelot** -- inferred regions enforce the Fresh / Consistent /
  FreshConsistent constraints by construction;
* **Atomics-only** -- the whole program inside programmer-placed regions.

Prints per-configuration activity: completed checks, urgent warnings,
violations, and the time split between running and charging.

Run with::

    python examples/tire_monitor.py
"""

from repro import compile_source, run_activations
from repro.apps import BENCHMARKS
from repro.eval.profiles import STANDARD_PROFILE

BUDGET_CYCLES = 250_000


def main() -> None:
    meta = BENCHMARKS["tire"]
    print("Tire safety monitor --", meta.constraints, "constraints")
    print(f"sensors: {', '.join(meta.sensors)}  |  source: {meta.loc} LoC")
    print(f"simulating {BUDGET_CYCLES} cycles on the standard RF profile\n")

    header = (
        f"{'config':8s} {'runs':>5s} {'violating':>10s} {'on-cycles':>10s} "
        f"{'charging':>10s} {'reboots':>8s}"
    )
    print(header)
    print("-" * len(header))
    for config in ("jit", "ocelot", "atomics"):
        compiled = compile_source(meta.source, config)
        outcome = run_activations(
            compiled,
            meta.env_factory(0),
            STANDARD_PROFILE.make_supply(seed=42),
            budget_cycles=BUDGET_CYCLES,
            costs=meta.cost_model(),
        )
        reboots = sum(r.reboots for r in outcome.records)
        print(
            f"{config:8s} {outcome.completed_runs:5d} "
            f"{outcome.violating_runs:10d} {outcome.total_cycles_on:10d} "
            f"{outcome.total_cycles_off:10d} {reboots:8d}"
        )

    print()
    print("JIT completes the most checks per unit time but some of its")
    print("burst-tire decisions used inconsistent snapshots (violating")
    print("runs above).  Ocelot trades a few percent of throughput for")
    print("zero violations; Atomics-only pays region overhead everywhere.")


if __name__ == "__main__":
    main()
