"""Fleet simulation demo: a small heterogeneous device population.

Builds a three-class fleet in code (the JSON route is
``examples/fleet_small.json`` via ``python -m repro fleet``), runs it
serially, and prints the aggregate tables -- per-class violation rates,
staleness/consistency-failure histograms, and duty-cycle distributions.

Run with::

    PYTHONPATH=src python examples/fleet_demo.py
"""

from repro.eval.campaign import EnvironmentSpec, SupplySpec
from repro.fleet import (
    DeviceClass,
    FleetSpec,
    duty_table,
    histogram_table,
    run_fleet,
)


def main() -> None:
    spec = FleetSpec(
        name="demo",
        fleet_seed=2026,
        budget_cycles=30_000,
        classes=(
            # 12 tire monitors on the enforcing build; each device draws
            # its harvest rate from a seeded ±50% band and a private
            # environment phase, so power failures and pressure events
            # de-correlate across the fleet.
            DeviceClass(
                name="tire-ocelot",
                app="tire",
                config="ocelot",
                count=12,
                supply=SupplySpec(harvest_rate=300),
                harvest_jitter=0.5,
                phase_jitter=8_000,
            ),
            # The same population on the JIT baseline: same seeds, same
            # environments, no enforcement -- the violation-rate gap in
            # the table below is the fleet-scale Table 2b story.
            DeviceClass(
                name="tire-jit",
                app="tire",
                config="jit",
                count=12,
                supply=SupplySpec(harvest_rate=300),
                harvest_jitter=0.5,
                phase_jitter=8_000,
            ),
            # A smaller greenhouse wing, each device sensing a different
            # seeded world (env_seed_stride) rather than a shifted phase.
            DeviceClass(
                name="greenhouse-ocelot",
                app="greenhouse",
                config="ocelot",
                count=8,
                environment=EnvironmentSpec(env_seed=7),
                env_seed_stride=3,
                harvest_jitter=0.3,
            ),
        ),
    )
    print(
        f"fleet '{spec.name}': {spec.device_count} devices in "
        f"{len(spec.classes)} classes, budget {spec.budget_cycles} "
        "cycles/device"
    )

    result = run_fleet(spec, "serial")
    print()
    print(result.table().render_text())
    print()
    print(histogram_table(result).render_text())
    print()
    print(duty_table(result).render_text())


if __name__ == "__main__":
    main()
