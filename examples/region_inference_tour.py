#!/usr/bin/env python3
"""A tour of Algorithm 1: how Ocelot decides where regions go.

Walks the Figure 6 example step by step, printing the artifacts the paper
defines: provenance chains, policies (PD), the candidate function from
``findCandidate``, the hoisted representatives, the dominator queries, and
the final truncated placement -- then shows the undo-log omega sets the
WAR/EMW analysis attaches.

Run with::

    python examples/region_inference_tour.py
"""

from repro.analysis.policies import build_policies
from repro.analysis.provenance import common_context, representative_op
from repro.analysis.taint import analyze_module
from repro.core.inference import candidate_function, find_candidate, infer_atomic
from repro.core.pipeline import compile_source
from repro.ir import print_module
from repro.ir.lowering import lower_program
from repro.lang import parse_program

# Figure 6(b): app calls confirm; confirm reads the pressure sensor twice
# through the same driver function -- a consistent pair whose operations
# only meet inside confirm.
SOURCE = """\
inputs sense_p;

nonvolatile confirmed = 0;

fn pres() {
  let p = input(sense_p);
  let p2 = p + 1;
  return p2;
}

fn confirm() {
  let consistent(1) y = pres();
  let consistent(1) y2 = pres();
  if y == y2 {
    confirmed = confirmed + 1;
  }
}

fn main() {
  confirm();
}
"""


def main() -> None:
    print(__doc__)
    module = lower_program(parse_program(SOURCE))
    taint = analyze_module(module)
    policies = build_policies(taint)

    print("--- policies (PD) " + "-" * 50)
    for policy in policies.all_policies():
        print(f"{policy.pid}  [{policy.kind}]")
        for chain in sorted(policy.inputs):
            print(f"  input : {chain}")
        for chain in sorted(policy.decl_chains):
            print(f"  decl  : {chain}")

    (policy,) = policies.consistent_policies()
    chains = sorted(policy.ops())

    print()
    print("--- findCandidate (Algorithm 1, line 6) " + "-" * 28)
    context = find_candidate(module, chains)
    print(f"common call-site prefix : {[str(c) for c in context]}")
    assert context == common_context(chains)
    goal = candidate_function(module, context)
    print(f"candidate function      : {goal}")
    print("(both calls to pres are inside confirm, so the region lands")
    print(" there -- smaller than wrapping all of main, Section 6.2)")

    print()
    print("--- hoisting (lines 7-16) " + "-" * 42)
    for chain in chains:
        rep = representative_op(chain, context)
        print(f"{str(chain):55s} -> rep {rep}")

    print()
    print("--- insertion + WAR/EMW " + "-" * 44)
    pm, regions = infer_atomic(module, policies)
    from repro.core.war import annotate_omegas

    infos = annotate_omegas(module)
    for region in regions:
        info = next(i for i in infos if i.region == region.region)
        print(
            f"region {region.region} in {region.func}: "
            f"{region.start_block}[{region.start_index}] .. "
            f"{region.end_block}[{region.end_index}]  "
            f"war={sorted(info.war)} emw={sorted(info.emw)} "
            f"omega={sorted(info.omega)}"
        )

    print()
    print("--- final IR " + "-" * 55)
    print(print_module(module))

    # Cross-check with the full pipeline.
    compiled = compile_source(SOURCE, "ocelot")
    print(f"pipeline checker verdict: {'PASS' if compiled.check.ok else 'FAIL'}")


if __name__ == "__main__":
    main()
