"""Tour of the campaign engine: declarative sweeps over the evaluation grid.

A campaign describes apps x configs x environments x supplies x seeds as
data, expands it into a job matrix, executes it through a pluggable
executor, and aggregates per-job results.  Programs compile once per
campaign through the shared compile cache.

Run with::

    PYTHONPATH=src python examples/campaign_tour.py
"""

from repro.core.cache import GLOBAL_CACHE
from repro.eval.campaign import (
    CampaignSpec,
    EnvironmentSpec,
    SerialExecutor,
    SupplySpec,
    run_campaign,
)


def main() -> None:
    spec = CampaignSpec(
        name="tour",
        apps=("greenhouse", "tire"),
        configs=("ocelot", "jit"),
        environments=(
            EnvironmentSpec("default", env_seed=0),
            # Same world, but with the humidity channel pinned by an
            # override -- the textual signal grammar of `--set`.
            EnvironmentSpec("dry", env_seed=0, overrides=(("hum", "20"),)),
        ),
        supplies=(SupplySpec.from_profile(seed_offset=23),),
        seeds=(0,),
        budget_cycles=60_000,
    )
    print(f"grid: {spec.size} jobs "
          f"({len(spec.apps)} apps x {len(spec.configs)} configs x "
          f"{len(spec.environments)} environments)")

    result = run_campaign(spec, SerialExecutor())
    print(result.table().render_text())
    print()

    # Individual jobs are addressable and JSON-ready.
    job = result.job("greenhouse/jit/default/harvest/s0")
    print(f"greenhouse/jit: {job.completed_runs} runs, "
          f"{job.violating_runs} violating "
          f"({job.fresh_violations} fresh / "
          f"{job.consistent_violations} consistent violations)")

    # The compile cache did the heavy lifting once per (app, config).
    stats = GLOBAL_CACHE.stats
    print(f"compile cache: {stats.compiles} compiles, {stats.hits} hits")

    # A second run reuses every build.
    again = run_campaign(spec)
    assert again.compiles == 0
    assert again.fingerprint() == result.fingerprint()
    print("second run: zero recompiles, identical results")


if __name__ == "__main__":
    main()
