#!/usr/bin/env python3
"""Quickstart: annotate, compile, and run a tiny sensor program.

Walks the full Ocelot workflow on a minimal thermometer-alarm program
(the freshness half of the paper's Figure 2):

1. write an annotated program in the modeling language,
2. compile it -- Ocelot infers and inserts atomic regions,
3. inspect the inferred regions and the policy the analysis built,
4. run it on continuous power (the specification behaviour),
5. run it on intermittent power with a maliciously-placed power failure
   and watch JIT misbehave while the Ocelot build re-executes and stays
   correct.

Run with::

    python examples/quickstart.py
"""

from repro import compile_source, run_continuous, run_once
from repro.ir import print_module
from repro.runtime import FailurePoint, ScheduledFailures
from repro.sensors import Environment, steps

SOURCE = """\
inputs temp;

fn main() {
  let t = input(temp);
  Fresh(t);             // t must be used before a power failure intervenes
  if t > 30 {
    alarm();            // the fire alarm must reflect the *current* temp
  }
  work(200);            // unrelated processing, free to be interrupted
  log(t);
}
"""


def main() -> None:
    print("=== 1. The annotated program " + "=" * 40)
    print(SOURCE)

    print("=== 2. Compile with Ocelot " + "=" * 42)
    compiled = compile_source(SOURCE, "ocelot")
    print(f"policies inferred : {len(compiled.policies)}")
    for region in compiled.regions:
        print(
            f"region {region.region} for {region.pid}: "
            f"{region.func}/{region.start_block}[{region.start_index}] .. "
            f"{region.end_block}[{region.end_index}]"
        )
    print(f"checker verdict   : {'PASS' if compiled.check.ok else 'FAIL'}")
    print()
    print("Instrumented IR:")
    print(print_module(compiled.module))

    # The world: temperature jumps from 20 to 35 every 5000 cycles.
    def fresh_env() -> Environment:
        return Environment({"temp": steps([20, 35], 5000)})

    print("=== 3. Continuous power (the specification) " + "=" * 25)
    result = run_continuous(compiled, fresh_env())
    print(f"outputs    : {[(o.op, o.values) for o in result.trace.outputs]}")
    print(f"violations : {result.stats.violations}")

    print()
    print("=== 4. Power failure right before the alarm decision " + "=" * 16)
    # Fail immediately before the branch that uses t: the worst case.
    plan = compiled.detector_plan()
    use_site = sorted(plan.checks)[0]
    print(f"injecting failure before {use_site} (off-time: 8000 cycles)")

    for config in ("jit", "ocelot"):
        build = compile_source(SOURCE, config)
        site = sorted(build.detector_plan().checks)[0]
        supply = ScheduledFailures([FailurePoint(chain=site)], off_cycles=8000)
        result = run_once(build, fresh_env(), supply)
        verdict = "VIOLATION" if result.stats.violations else "correct"
        print(
            f"  {config:7s}: reboots={result.stats.reboots} "
            f"region_restarts={result.stats.region_restarts} -> {verdict}"
        )
    print()
    print("JIT resumed with a stale reading; Ocelot's atomic region rolled")
    print("back and re-sampled, so its decision matches a continuous run.")

    print()
    print("=== 5. Execution timeline (Ocelot, with the injected failure) ===")
    from repro.eval.timeline import render_timeline

    build = compile_source(SOURCE, "ocelot")
    site = sorted(build.detector_plan().checks)[0]
    supply = ScheduledFailures([FailurePoint(chain=site)], off_cycles=2000)
    result = run_once(build, fresh_env(), supply)
    print(render_timeline(result.trace, width=72))
    print("legend: # on, . off | [=] atomic extent | I input, C checkpoint,")
    print("        R reboot, O output, V violation")


if __name__ == "__main__":
    main()
