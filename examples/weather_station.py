#!/usr/bin/env python3
"""The Figure 2 weather station: freshness AND temporal consistency.

Reproduces the paper's motivating example end to end:

* the thermometer alarm can go stale (freshness),
* the pressure/humidity pair can tear across a power failure, logging
  "weather" that never happened (temporal consistency) -- the storm bug.

The script runs the JIT build and the Ocelot build through a weather
front and shows the torn log entries JIT commits, then verifies the
formal trace predicates (Definitions 2 and 3) agree with the bit-vector
detector on every run.

Run with::

    python examples/weather_station.py
"""

from repro import compile_source, run_once
from repro.runtime import FailurePoint, ScheduledFailures
from repro.runtime.properties import check_consistency, check_freshness
from repro.sensors import Environment, steps

SOURCE = """\
inputs temp, pres, hum;

nonvolatile storms_logged = 0;

fn main() {
  // Part 1: high-temperature alarm (freshness).
  let x = input(temp);
  Fresh(x);
  if x > 5 {
    alarm();
  }

  // Part 2: storm detection (temporal consistency).  Low pressure and
  // high humidity together indicate a storm; the pair must come from
  // one moment in time.
  let consistent(1) y = input(pres);
  let consistent(1) z = input(hum);
  if y < 80 && z > 60 {
    storms_logged = storms_logged + 1;
  }
  log(y, z);
}
"""


def make_env() -> Environment:
    # A front passes: fair (high pres, low hum) -> storm (low pres, high
    # hum).  Both signals flip together every 3000 cycles.
    return Environment(
        {
            "temp": steps([2, 9], 3000),
            "pres": steps([100, 60], 3000),
            "hum": steps([20, 85], 3000),
        }
    )


def main() -> None:
    print(__doc__)
    builds = {cfg: compile_source(SOURCE, cfg) for cfg in ("jit", "ocelot")}

    # Fail between the two consistent inputs: the storm-tearing point.
    print("--- tearing the pressure/humidity pair " + "-" * 30)
    for config, compiled in builds.items():
        plan = compiled.detector_plan()
        tear_site = next(
            site
            for site in sorted(plan.checks)
            if any(c.kind == "consistent" for c in plan.checks[site])
        )
        supply = ScheduledFailures([FailurePoint(chain=tear_site)], off_cycles=3000)
        result = run_once(compiled, make_env(), supply, plan=plan)
        log = [o.values for o in result.trace.outputs if o.op == "log"][-1]
        fresh_v = check_freshness(result.trace)
        cons_v = check_consistency(result.trace)
        print(f"{config:7s}: logged (pres, hum) = {log}")
        print(
            f"         detector violations={result.stats.violations}  "
            f"Def.2 violations={len(fresh_v)}  Def.3 violations={len(cons_v)}"
        )
        if cons_v:
            print(f"         {cons_v[0].detail}")
    print()
    print("The JIT log pairs fair-weather pressure with storm humidity --")
    print("a reading no continuous execution could produce (Figure 2's")
    print("'Inconsistent!' case).  Ocelot re-collected the pair after the")
    print("reboot, so its log matches a continuous execution.")

    # Freshness: fail before the alarm branch.
    print()
    print("--- staling the temperature alarm " + "-" * 35)
    for config, compiled in builds.items():
        plan = compiled.detector_plan()
        use_site = next(
            site
            for site in sorted(plan.checks)
            if any(c.kind == "fresh" for c in plan.checks[site])
        )
        supply = ScheduledFailures([FailurePoint(chain=use_site)], off_cycles=3000)
        result = run_once(compiled, make_env(), supply, plan=plan)
        alarms = [o for o in result.trace.outputs if o.op == "alarm"]
        print(
            f"{config:7s}: alarms={len(alarms)} "
            f"violations={result.stats.violations} "
            f"(temp was 2 before the failure, 9 after)"
        )
    print()
    print("JIT decided the alarm with the pre-failure reading; Ocelot's")
    print("region re-sampled after the reboot and alarmed correctly.")


if __name__ == "__main__":
    main()
